package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Payload is a validated, structured view of one encoded model: the
// no-densify access path the fused aggregation rules consume
// (aggregate.PayloadRule). A view is produced either by ParsePayload
// from tagged wire bytes or by DensePayload from an in-memory vector,
// and every accessor reconstructs exactly the coordinates
// DecodePayloadInto would have produced — bit-identical, which is what
// lets the aggregation layer operate on views without a per-client
// dense scratch vector.
//
// Views may alias their source: sparse indices/values are decoded into
// owned slices at parse time, but dense raw bytes, quantized code
// bytes and DensePayload vectors are referenced, not copied. Callers
// must not mutate the source buffer while the view is live, and must
// treat the view itself as read-only. The zero Payload is an empty
// dense vector (Dim 0).
type Payload struct {
	enc Encoding
	dim int
	vec []float64 // DensePayload wrapper (aliases the caller's vector)
	raw []byte    // EncDense payload bytes (alias)
	idx []uint32  // EncSparse indices, strictly increasing (owned)
	val []float64 // EncSparse values (owned)
	q   Quantized // EncQuantized header + Codes alias
}

// ParsePayload validates a tagged payload and returns a structured
// view of it. Validation is complete up front — a sparse payload with
// duplicate, out-of-order or out-of-range indices, or any payload
// with a malformed header or length, is rejected here, before the
// view can reach an aggregation accumulator. The error cases are
// exactly DecodePayloadInto's, wrapped in ErrPayload.
func ParsePayload(enc Encoding, payload []byte) (Payload, error) {
	switch enc {
	case EncDense:
		if len(payload)%8 != 0 {
			return Payload{}, fmt.Errorf("%w: dense payload length %d not a multiple of 8", ErrPayload, len(payload))
		}
		return Payload{enc: EncDense, dim: len(payload) / 8, raw: payload}, nil
	case EncSparse:
		s, err := DecodeSparse(payload)
		if err != nil {
			return Payload{}, err
		}
		return Payload{enc: EncSparse, dim: s.Dim, idx: s.Indices, val: s.Values}, nil
	case EncQuantized:
		q, err := quantizedHeader(payload)
		if err != nil {
			return Payload{}, err
		}
		return Payload{enc: EncQuantized, dim: q.Dim, q: q}, nil
	}
	return Payload{}, fmt.Errorf("%w: unknown encoding %d", ErrPayload, uint8(enc))
}

// DensePayload wraps an in-memory dense vector as a view without
// copying. It is how v1 (dense-frame) models and engine-internal
// vectors enter the fused aggregation path uniformly.
func DensePayload(v []float64) Payload {
	return Payload{enc: EncDense, dim: len(v), vec: v}
}

// Encoding returns the payload's wire tag (EncDense for DensePayload
// wrappers).
func (p *Payload) Encoding() Encoding { return p.enc }

// Dim returns the dense dimension the view decodes to.
func (p *Payload) Dim() int { return p.dim }

// WireBytes returns the encoded payload size in bytes; DensePayload
// wrappers report the 8·Dim bytes a dense frame would occupy.
func (p *Payload) WireBytes() int {
	switch {
	case p.vec != nil || p.enc == EncDense && p.raw == nil:
		return 8 * p.dim
	case p.enc == EncDense:
		return len(p.raw)
	case p.enc == EncSparse:
		return 8 + len(p.idx)*12
	default:
		return 24 + len(p.q.Codes)
	}
}

// Sparse exposes the explicit support of a sparse view: strictly
// increasing in-range indices and their values, with every other
// coordinate an implicit +0.0. ok is false for dense and quantized
// views, whose support is the full dimension. The returned slices are
// read-only.
func (p *Payload) Sparse() (indices []uint32, values []float64, ok bool) {
	if p.enc != EncSparse {
		return nil, nil, false
	}
	return p.idx, p.val, true
}

// DenseInto reconstructs the full vector into dst, bit-identical to
// DecodePayloadInto on the original payload. len(dst) must equal Dim.
func (p *Payload) DenseInto(dst []float64) {
	p.checkDim(len(dst))
	p.GatherInto(dst, 0, p.dim)
}

// DenseView returns the reconstructed dense vector. For DensePayload
// wrappers it returns the wrapped slice without copying — callers
// must not mutate the result. All other views allocate.
func (p *Payload) DenseView() []float64 {
	if p.vec != nil {
		return p.vec
	}
	out := make([]float64, p.dim)
	p.DenseInto(out)
	return out
}

// GatherInto reconstructs the coordinate range [lo, hi) into
// dst[0:hi-lo], bit-identical to the same slice of the densified
// vector. It is the column-gather primitive of the fused trimmed-mean
// and median paths.
func (p *Payload) GatherInto(dst []float64, lo, hi int) {
	if lo < 0 || hi < lo || hi > p.dim {
		panic(fmt.Sprintf("compress: GatherInto range [%d,%d) outside dim %d", lo, hi, p.dim))
	}
	dst = dst[:hi-lo]
	switch {
	case p.vec != nil:
		copy(dst, p.vec[lo:hi])
	case p.enc == EncDense:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(p.raw[8*(lo+i):]))
		}
	case p.enc == EncSparse:
		for i := range dst {
			dst[i] = 0
		}
		c := sort.Search(len(p.idx), func(i int) bool { return int(p.idx[i]) >= lo })
		for ; c < len(p.idx) && int(p.idx[c]) < hi; c++ {
			dst[int(p.idx[c])-lo] = p.val[c]
		}
	default:
		p.q.denseRange(dst, lo, hi)
	}
}

// AddTo accumulates the view into acc: acc[j] += v[j] for the
// densified v, except that a sparse view only touches its explicit
// support. Skipping the implicit zeros is bit-identical to
// tensor.VecAdd(acc, densified): an accumulator that starts at +0.0
// can never hold -0.0 (x+(-x) and (+0)+(-0) both round to +0.0 and
// only (-0)+(-0) yields -0.0), and acc[j] + (+0.0) == acc[j] bitwise
// for every other value. len(acc) must equal Dim.
func (p *Payload) AddTo(acc []float64) {
	p.checkDim(len(acc))
	switch {
	case p.vec != nil:
		for i, v := range p.vec {
			acc[i] += v
		}
	case p.enc == EncDense:
		for i := range acc {
			acc[i] += math.Float64frombits(binary.LittleEndian.Uint64(p.raw[8*i:]))
		}
	case p.enc == EncSparse:
		for c, idx := range p.idx {
			acc[idx] += p.val[c]
		}
	default:
		p.q.addTo(acc)
	}
}

func (p *Payload) checkDim(n int) {
	if n != p.dim {
		panic(fmt.Sprintf("compress: payload dim %d, caller expects %d", p.dim, n))
	}
}

// denseRange dequantizes coordinates [lo, hi) into dst[0:hi-lo] with
// the exact per-coordinate expression of denseInto, so range gathers
// stay bit-identical to full decodes.
func (q *Quantized) denseRange(dst []float64, lo, hi int) {
	levels := (uint64(1) << q.Bits) - 1
	span := q.Max - q.Min
	for i := lo; i < hi; i++ {
		if levels == 0 || span == 0 {
			dst[i-lo] = q.Min
			continue
		}
		dst[i-lo] = q.Min + span*float64(q.code(i))/float64(levels)
	}
}

// addTo accumulates the dequantized vector into acc using the same
// per-coordinate expression as denseInto.
func (q *Quantized) addTo(acc []float64) {
	levels := (uint64(1) << q.Bits) - 1
	span := q.Max - q.Min
	for i := 0; i < q.Dim; i++ {
		if levels == 0 || span == 0 {
			acc[i] += q.Min
			continue
		}
		acc[i] += q.Min + span*float64(q.code(i))/float64(levels)
	}
}
