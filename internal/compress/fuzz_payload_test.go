package compress_test

import (
	"math"
	"testing"

	"fedms/internal/aggregate"
	"fedms/internal/compress"
)

// FuzzParsePayload is the payload-view counterpart of FuzzDecodeSparse
// and FuzzDecodeQuantized, extended to drive the fused column-gather
// aggregation path (it lives in an external test package because the
// gather kernels sit above compress in internal/aggregate). The
// contract under fuzz is threefold:
//
//   - Rejection parity: ParsePayload accepts a payload iff the
//     pre-existing DecodePayload accepts it. Duplicate, out-of-order
//     or out-of-range sparse indices, truncated buffers, bad quantizer
//     headers and unknown tags are all rejected at parse time — before
//     a view exists, so before any aggregation accumulator can be
//     written. The seed corpus pins one regression seed per rejection
//     class.
//   - Reconstruction identity: every accepted view reconstructs
//     bit-identically through DenseInto, tile-sized GatherInto and
//     AddTo-onto-zeros.
//   - Gather identity: the fused trimmed-mean and mean kernels over
//     copies of the view match decode-then-aggregate bit for bit.
func FuzzParsePayload(f *testing.F) {
	sparse := func(dim uint32, idx []uint32, val []float64) []byte {
		s := compress.Sparse{Dim: int(dim), Indices: idx, Values: val}
		return s.AppendEncode(nil)
	}
	valid := sparse(4, []uint32{0, 2}, []float64{1, -2})

	// Accepted shapes, one per encoding family.
	f.Add(byte(compress.EncSparse), valid)
	f.Add(byte(compress.EncQuantized), compress.Uniform{Bits: 4}.Compress([]float64{0.5, -0.5, 2}).Encode())
	f.Add(byte(compress.EncDense), []byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f})
	f.Add(byte(compress.EncSparse), sparse(4, nil, nil)) // empty support

	// One regression seed per rejection class.
	f.Add(byte(compress.EncSparse), sparse(4, []uint32{1, 1}, []float64{1, 2}))                                           // duplicate index
	f.Add(byte(compress.EncSparse), sparse(4, []uint32{2, 1}, []float64{1, 2}))                                           // out-of-order index
	f.Add(byte(compress.EncSparse), sparse(4, []uint32{1, 9}, []float64{1, 2}))                                           // out-of-range index
	f.Add(byte(compress.EncSparse), valid[:len(valid)-3])                                                                 // truncated buffer
	f.Add(byte(compress.EncSparse), []byte{1, 0, 0, 0, 3, 0, 0, 0})                                                       // count exceeds dim
	f.Add(byte(compress.EncQuantized), []byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // zero bit width
	f.Add(byte(compress.EncDense), []byte{1, 2, 3})                                                                       // not a multiple of 8
	f.Add(byte(7), valid)                                                                                                 // unknown encoding tag
	f.Add(byte(compress.EncSparse), []byte{1, 0, 0, 0x30, 0, 0, 0, 0})                                                    // empty support claiming dim≈8e8 (found by fuzzing: the oracle must not densify it)

	f.Fuzz(func(t *testing.T, encByte byte, data []byte) {
		enc := compress.Encoding(encByte)
		view, err := compress.ParsePayload(enc, data)
		dim, dimErr := compress.PayloadDim(enc, data)
		if err == nil && dimErr != nil {
			t.Fatalf("ParsePayload accepts a payload with a bad header: %v", dimErr)
		}
		if err == nil && view.Dim() != dim {
			t.Fatalf("view dim %d, header dim %d", view.Dim(), dim)
		}
		if dimErr == nil && dim > 1<<15 {
			// A tiny payload may legitimately claim a huge dimension
			// (e.g. an empty sparse support over d=1e9): ParsePayload
			// stays O(len(data)), but the densify oracle would allocate
			// dim floats, so wide headers stop at structural parity.
			return
		}
		ref, refErr := compress.DecodePayload(enc, data)
		if err != nil {
			if refErr == nil {
				t.Fatalf("ParsePayload rejects what DecodePayload accepts: %v", err)
			}
			return
		}
		if refErr != nil {
			t.Fatalf("ParsePayload accepts what DecodePayload rejects: %v", refErr)
		}
		d := view.Dim()
		if d != len(ref) {
			t.Fatalf("view dim %d, decoded dim %d", d, len(ref))
		}

		full := make([]float64, d)
		view.DenseInto(full)
		gathered := make([]float64, d)
		const tile = 96 // deliberately unaligned with the kernels' tile size
		for lo := 0; lo < d; lo += tile {
			hi := lo + tile
			if hi > d {
				hi = d
			}
			view.GatherInto(gathered[lo:hi], lo, hi)
		}
		added := make([]float64, d)
		view.AddTo(added)
		// AddTo's oracle is dense *accumulation*, not the dense vector:
		// an explicit -0.0 entry added to a +0.0 accumulator rounds to
		// +0.0 on both paths (fuzzing found the distinction).
		refAcc := make([]float64, d)
		for j := range refAcc {
			refAcc[j] += ref[j]
		}
		for j := 0; j < d; j++ {
			if math.Float64bits(full[j]) != math.Float64bits(ref[j]) ||
				math.Float64bits(gathered[j]) != math.Float64bits(ref[j]) ||
				math.Float64bits(added[j]) != math.Float64bits(refAcc[j]) {
				t.Fatalf("coord %d: DenseInto %v / GatherInto %v / AddTo %v, decoded %v",
					j, full[j], gathered[j], added[j], ref[j])
			}
		}

		views := []compress.Payload{view, view, view}
		dense := [][]float64{ref, ref, ref}
		for _, rule := range []aggregate.PayloadRule{
			aggregate.Mean{},
			aggregate.TrimmedMean{Trim: 1},
			aggregate.CoordinateMedian{},
		} {
			got := rule.AggregatePayloads(views)
			want := rule.Aggregate(dense)
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("%s coord %d: fused %v != reference %v", rule.Name(), j, got[j], want[j])
				}
			}
		}
	})
}
