package compress

import "testing"

// FuzzDecodeSparse asserts the sparse decoder never panics and its
// accepted outputs reconstruct without index panics.
func FuzzDecodeSparse(f *testing.F) {
	f.Add(TopK{K: 2}.Compress([]float64{1, -2, 3}).Encode())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSparse(data)
		if err != nil {
			return
		}
		dense := s.Dense()
		if len(dense) != s.Dim {
			t.Fatal("dense length mismatch")
		}
	})
}

// FuzzDecodeQuantized asserts the quantized decoder never panics.
func FuzzDecodeQuantized(f *testing.F) {
	f.Add(Uniform{Bits: 4}.Compress([]float64{0.5, -0.5, 2}).Encode())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeQuantized(data)
		if err != nil {
			return
		}
		if len(q.Dense()) != q.Dim {
			t.Fatal("dense length mismatch")
		}
	})
}
