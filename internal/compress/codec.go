// Codec layer: the pluggable model-exchange encodings shared by the
// transport framing, the distributed node runtime and the in-process
// engine. A Codec turns a dense []float64 into a tagged wire payload;
// the stateless DecodePayload* functions turn tagged payloads back into
// dense vectors. Stateful codecs (error feedback) keep their residual
// inside the Codec value, so one instance per client persists the state
// across rounds.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"fedms/internal/randx"
)

// Encoding tags the wire format of an encoded model payload. The values
// are part of the v2 frame format and must never be renumbered.
type Encoding uint8

const (
	// EncDense is raw little-endian float64s (8 bytes per coordinate).
	EncDense Encoding = 0
	// EncSparse is the Sparse index/value encoding.
	EncSparse Encoding = 1
	// EncQuantized is the Quantized bit-packed encoding.
	EncQuantized Encoding = 2
)

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case EncDense:
		return "dense"
	case EncSparse:
		return "sparse"
	case EncQuantized:
		return "quantized"
	}
	return fmt.Sprintf("Encoding(%d)", uint8(e))
}

// KnownEncoding reports whether e is a payload tag this build can
// decode. The wire decoder rejects frames with unknown tags before
// they reach any payload parser.
func KnownEncoding(e Encoding) bool {
	return e == EncDense || e == EncSparse || e == EncQuantized
}

// Codec encodes dense model vectors into tagged wire payloads. Encode
// state (error-feedback residuals, sampling counters, scratch buffers)
// lives in the Codec, so instances are NOT safe for concurrent use;
// give each client its own.
type Codec interface {
	// Name is the canonical spec string ("dense", "topk:0.05", ...).
	Name() string
	// AppendEncode compresses v, appends the encoded payload to dst and
	// returns the payload tag plus the extended buffer. The appended
	// bytes are exactly the payload DecodePayloadInto expects.
	AppendEncode(dst []byte, v []float64) (Encoding, []byte)
}

// ErrPayload tags structurally invalid codec payloads. Wire-layer
// consumers match on it to degrade a bad payload like a corrupt frame
// instead of killing the connection.
var ErrPayload = errors.New("compress: bad payload")

// ---------------------------------------------------------------------------
// Stateless payload decoding (shared by transport, node and engine)

// DecodePayload decodes a tagged payload into a freshly allocated dense
// vector. The dimension is read from the payload itself.
func DecodePayload(enc Encoding, payload []byte) ([]float64, error) {
	dim, err := PayloadDim(enc, payload)
	if err != nil {
		return nil, err
	}
	dst := make([]float64, dim)
	if err := DecodePayloadInto(dst, enc, payload); err != nil {
		return nil, err
	}
	return dst, nil
}

// PayloadDim reports the dense dimension a payload decodes to, without
// decoding the coordinates.
func PayloadDim(enc Encoding, payload []byte) (int, error) {
	switch enc {
	case EncDense:
		if len(payload)%8 != 0 {
			return 0, fmt.Errorf("%w: dense payload length %d not a multiple of 8", ErrPayload, len(payload))
		}
		return len(payload) / 8, nil
	case EncSparse:
		dim, _, err := sparseHeader(payload)
		return dim, err
	case EncQuantized:
		q, err := quantizedHeader(payload)
		if err != nil {
			return 0, err
		}
		return q.Dim, nil
	}
	return 0, fmt.Errorf("%w: unknown encoding %d", ErrPayload, uint8(enc))
}

// DecodePayloadInto decodes a tagged payload into dst without
// allocating. The payload's dimension must equal len(dst); sparse
// payloads additionally must carry strictly increasing, in-range
// indices (see DecodeSparse).
func DecodePayloadInto(dst []float64, enc Encoding, payload []byte) error {
	switch enc {
	case EncDense:
		if len(payload) != 8*len(dst) {
			return fmt.Errorf("%w: dense payload %d bytes, want %d", ErrPayload, len(payload), 8*len(dst))
		}
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return nil
	case EncSparse:
		return decodeSparseInto(dst, payload)
	case EncQuantized:
		return decodeQuantizedInto(dst, payload)
	}
	return fmt.Errorf("%w: unknown encoding %d", ErrPayload, uint8(enc))
}

// sparseHeader validates the fixed part of a Sparse payload and returns
// (dim, n).
func sparseHeader(buf []byte) (dim, n int, err error) {
	if len(buf) < 8 {
		return 0, 0, fmt.Errorf("%w: sparse encoding too short", ErrPayload)
	}
	dim = int(binary.LittleEndian.Uint32(buf[0:]))
	n = int(binary.LittleEndian.Uint32(buf[4:]))
	if n > dim {
		return 0, 0, fmt.Errorf("%w: sparse entry count %d exceeds dim %d", ErrPayload, n, dim)
	}
	if len(buf) != 8+n*12 {
		return 0, 0, fmt.Errorf("%w: sparse encoding length %d, want %d", ErrPayload, len(buf), 8+n*12)
	}
	return dim, n, nil
}

// decodeSparseInto scatters a sparse payload into dst, zeroing the rest.
func decodeSparseInto(dst []float64, buf []byte) error {
	dim, n, err := sparseHeader(buf)
	if err != nil {
		return err
	}
	if dim != len(dst) {
		return fmt.Errorf("%w: sparse dim %d, want %d", ErrPayload, dim, len(dst))
	}
	for i := range dst {
		dst[i] = 0
	}
	idxOff, valOff := 8, 8+4*n
	prev := -1
	for i := 0; i < n; i++ {
		idx := int(binary.LittleEndian.Uint32(buf[idxOff+4*i:]))
		if idx <= prev {
			return fmt.Errorf("%w: sparse index %d after %d (must be strictly increasing)", ErrPayload, idx, prev)
		}
		if idx >= dim {
			return fmt.Errorf("%w: sparse index %d out of range %d", ErrPayload, idx, dim)
		}
		prev = idx
		dst[idx] = math.Float64frombits(binary.LittleEndian.Uint64(buf[valOff+8*i:]))
	}
	return nil
}

// quantizedHeader validates a Quantized payload's header and returns a
// view whose Codes alias buf (no copy).
func quantizedHeader(buf []byte) (Quantized, error) {
	if len(buf) < 24 {
		return Quantized{}, fmt.Errorf("%w: quantized encoding too short", ErrPayload)
	}
	q := Quantized{
		Dim:  int(binary.LittleEndian.Uint32(buf[0:])),
		Bits: int(binary.LittleEndian.Uint32(buf[4:])),
		Min:  math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
		Max:  math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
	}
	if q.Bits < 1 || q.Bits > 16 {
		return Quantized{}, fmt.Errorf("%w: invalid bit width %d", ErrPayload, q.Bits)
	}
	want := (q.Dim*q.Bits + 7) / 8
	if len(buf) != 24+want {
		return Quantized{}, fmt.Errorf("%w: quantized encoding length %d, want %d", ErrPayload, len(buf), 24+want)
	}
	q.Codes = buf[24:]
	return q, nil
}

// decodeQuantizedInto dequantizes a payload straight into dst.
func decodeQuantizedInto(dst []float64, buf []byte) error {
	q, err := quantizedHeader(buf)
	if err != nil {
		return err
	}
	if q.Dim != len(dst) {
		return fmt.Errorf("%w: quantized dim %d, want %d", ErrPayload, q.Dim, len(dst))
	}
	q.denseInto(dst)
	return nil
}

// ---------------------------------------------------------------------------
// Codec specs ("dense", "topk:0.05", "q8", "ef+topk:0.1")

// Spec is a parsed codec specification. The zero value is the dense
// identity codec.
type Spec struct {
	// Kind is one of "dense", "topk", "randk", "q".
	Kind string
	// Ratio is the kept fraction for topk/randk, in (0, 1].
	Ratio float64
	// Bits is the per-coordinate width for q, in [1, 16].
	Bits int
	// EF wraps the codec in error feedback (residual accumulation).
	EF bool
}

// SpecInfo documents one codec family ParseSpec understands.
type SpecInfo struct {
	// Kind is the family name as written in a spec.
	Kind string
	// Usage is the spec grammar, e.g. "topk:<ratio>".
	Usage string
	// Doc is a one-line description for CLI help and errors.
	Doc string
}

// Registry lists the codec families ParseSpec understands, in display
// order. CLIs use it for --help text and actionable parse errors.
func Registry() []SpecInfo {
	return []SpecInfo{
		{"dense", "dense", "raw float64 coordinates (identity; the default)"},
		{"topk", "topk:<ratio>", "keep the ceil(ratio*d) largest-magnitude coordinates, ratio in (0,1]"},
		{"randk", "randk:<ratio>", "keep ceil(ratio*d) random coordinates scaled d/k (unbiased), ratio in (0,1]"},
		{"q", "q<bits>", "uniform quantization to <bits> bits per coordinate, bits in [1,16]"},
	}
}

// specUsage renders the registry grammar for error messages.
func specUsage() string {
	infos := Registry()
	usages := make([]string, len(infos))
	for i, in := range infos {
		usages[i] = in.Usage
	}
	return strings.Join(usages, ", ") + ", or ef+<spec> (e.g. ef+topk:0.1)"
}

// ParseSpec parses a codec specification string. Accepted forms are
// listed by Registry, optionally prefixed with "ef+" to add error
// feedback ("" and "none" mean dense).
func ParseSpec(s string) (Spec, error) {
	raw := s
	s = strings.ToLower(strings.TrimSpace(s))
	var sp Spec
	if rest, ok := strings.CutPrefix(s, "ef+"); ok {
		sp.EF = true
		s = rest
	}
	switch {
	case s == "" || s == "dense" || s == "none":
		sp.Kind = "dense"
		if sp.EF {
			return Spec{}, fmt.Errorf("compress: spec %q: error feedback needs a lossy codec (dense is exact)", raw)
		}
		return sp, nil
	case strings.HasPrefix(s, "topk:") || strings.HasPrefix(s, "randk:"):
		kind, val, _ := strings.Cut(s, ":")
		r, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("compress: spec %q: bad ratio %q: %v", raw, val, err)
		}
		if !(r > 0 && r <= 1) {
			return Spec{}, fmt.Errorf("compress: spec %q: ratio %g out of range (0, 1]", raw, r)
		}
		sp.Kind, sp.Ratio = kind, r
		return sp, nil
	case strings.HasPrefix(s, "q"):
		b, err := strconv.Atoi(s[1:])
		if err != nil {
			return Spec{}, fmt.Errorf("compress: spec %q: bad bit width %q: %v", raw, s[1:], err)
		}
		if b < 1 || b > 16 {
			return Spec{}, fmt.Errorf("compress: spec %q: bit width %d out of range [1, 16]", raw, b)
		}
		sp.Kind, sp.Bits = "q", b
		return sp, nil
	}
	return Spec{}, fmt.Errorf("compress: unknown codec spec %q (want %s)", raw, specUsage())
}

// Validate checks a Spec constructed without ParseSpec.
func (sp Spec) Validate() error {
	_, err := ParseSpec(sp.String())
	return err
}

// String renders the canonical spec form, re-parseable by ParseSpec.
func (sp Spec) String() string {
	var body string
	switch sp.Kind {
	case "", "dense":
		return "dense"
	case "topk", "randk":
		body = fmt.Sprintf("%s:%g", sp.Kind, sp.Ratio)
	case "q":
		body = fmt.Sprintf("q%d", sp.Bits)
	default:
		body = sp.Kind
	}
	if sp.EF {
		return "ef+" + body
	}
	return body
}

// IsDense reports whether the spec is the identity codec.
func (sp Spec) IsDense() bool { return sp.Kind == "" || sp.Kind == "dense" }

// NewCodec builds a fresh codec instance for the spec. seed drives
// stochastic codecs (randk); deterministic specs ignore it. Each client
// must get its own instance: error-feedback residuals and scratch
// buffers live in the codec.
func (sp Spec) NewCodec(seed uint64) (Codec, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	var c Codec
	switch sp.Kind {
	case "", "dense":
		return denseCodec{}, nil
	case "topk":
		c = &topkCodec{name: Spec{Kind: "topk", Ratio: sp.Ratio}.String(), ratio: sp.Ratio}
	case "randk":
		c = &randkCodec{name: Spec{Kind: "randk", Ratio: sp.Ratio}.String(), ratio: sp.Ratio, seed: seed}
	case "q":
		c = &quantCodec{name: Spec{Kind: "q", Bits: sp.Bits}.String(), bits: sp.Bits}
	}
	if sp.EF {
		c = &efCodec{name: sp.String(), inner: c}
	}
	return c, nil
}

// EncodeDecode runs v through a fresh codec instance and returns the
// lossy reconstruction plus the payload size in bytes. It is stateless
// (no error feedback carries over) and allocates per call; the engine
// uses it to model downlink compression, where EF is disallowed anyway.
func (sp Spec) EncodeDecode(v []float64) ([]float64, int, error) {
	c, err := sp.NewCodec(0)
	if err != nil {
		return nil, 0, err
	}
	enc, payload := c.AppendEncode(nil, v)
	out := make([]float64, len(v))
	if err := DecodePayloadInto(out, enc, payload); err != nil {
		return nil, 0, err
	}
	return out, len(payload), nil
}

// ---------------------------------------------------------------------------
// Codec implementations

// denseCodec is the identity: payload is the raw little-endian floats.
type denseCodec struct{}

func (denseCodec) Name() string { return "dense" }

func (denseCodec) AppendEncode(dst []byte, v []float64) (Encoding, []byte) {
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return EncDense, dst
}

// topkCodec is TopK with reusable selection and sparse buffers, so the
// per-round encode allocates only on dimension growth.
type topkCodec struct {
	name  string
	ratio float64
	order []int
	s     Sparse
}

func (c *topkCodec) Name() string { return c.name }

func (c *topkCodec) AppendEncode(dst []byte, v []float64) (Encoding, []byte) {
	k := TopK{Ratio: c.ratio}.k(len(v))
	c.sparsify(v, k, nil)
	return EncSparse, c.s.AppendEncode(dst)
}

// sparsify fills c.s with the top-k (or, when pick != nil, the given
// already-sorted index set) of v, reusing buffers.
func (c *topkCodec) sparsify(v []float64, k int, pick []int) {
	if pick == nil {
		if cap(c.order) < len(v) {
			c.order = make([]int, len(v))
		}
		order := c.order[:len(v)]
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return math.Abs(v[order[a]]) > math.Abs(v[order[b]])
		})
		pick = order[:k]
		sort.Ints(pick)
	}
	if cap(c.s.Indices) < k {
		c.s.Indices = make([]uint32, k)
		c.s.Values = make([]float64, k)
	}
	c.s.Dim = len(v)
	c.s.Indices = c.s.Indices[:k]
	c.s.Values = c.s.Values[:k]
	for i, idx := range pick {
		c.s.Indices[i] = uint32(idx)
		c.s.Values[i] = v[idx]
	}
}

// randkCodec samples a fresh index set each call from a per-instance
// stream, scaling kept values by d/k like RandK.
type randkCodec struct {
	name  string
	ratio float64
	seed  uint64
	calls uint64
	t     topkCodec
}

func (c *randkCodec) Name() string { return c.name }

func (c *randkCodec) AppendEncode(dst []byte, v []float64) (Encoding, []byte) {
	k := TopK{Ratio: c.ratio}.k(len(v))
	rng := randx.New(randx.Derive(c.seed, fmt.Sprintf("randk/%d", c.calls)))
	c.calls++
	pick := randx.Perm(rng, len(v))[:k]
	sort.Ints(pick)
	c.t.sparsify(v, k, pick)
	scale := float64(len(v)) / float64(k)
	for i := range c.t.s.Values {
		c.t.s.Values[i] *= scale
	}
	return EncSparse, c.t.s.AppendEncode(dst)
}

// quantCodec is Uniform quantization with a reusable code buffer.
type quantCodec struct {
	name  string
	bits  int
	codes []byte
}

func (c *quantCodec) Name() string { return c.name }

func (c *quantCodec) AppendEncode(dst []byte, v []float64) (Encoding, []byte) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if len(v) == 0 {
		lo, hi = 0, 0
	}
	n := (len(v)*c.bits + 7) / 8
	if cap(c.codes) < n {
		c.codes = make([]byte, n)
	}
	codes := c.codes[:n]
	for i := range codes {
		codes[i] = 0
	}
	q := Quantized{Dim: len(v), Bits: c.bits, Min: lo, Max: hi, Codes: codes}
	levels := float64((uint64(1) << c.bits) - 1)
	span := hi - lo
	for i, x := range v {
		var code uint64
		if span > 0 {
			code = uint64(math.Round((x - lo) / span * levels))
		}
		q.setCode(i, code)
	}
	return EncQuantized, q.AppendEncode(dst)
}

// efCodec wraps a lossy codec with error feedback: encode(v+residual),
// then keep the reconstruction error for the next round (Stich et al.,
// 2018). The residual persists for the codec's lifetime, i.e. across a
// client's rounds.
type efCodec struct {
	name      string
	inner     Codec
	residual  []float64
	corrected []float64
	recon     []float64
}

func (c *efCodec) Name() string { return c.name }

func (c *efCodec) AppendEncode(dst []byte, v []float64) (Encoding, []byte) {
	if c.residual == nil {
		c.residual = make([]float64, len(v))
		c.corrected = make([]float64, len(v))
		c.recon = make([]float64, len(v))
	}
	if len(c.residual) != len(v) {
		panic("compress: error-feedback codec dimension changed")
	}
	for i := range v {
		c.corrected[i] = v[i] + c.residual[i]
	}
	enc, out := c.inner.AppendEncode(dst, c.corrected)
	payload := out[len(dst):]
	if err := DecodePayloadInto(c.recon, enc, payload); err != nil {
		// The inner codec produced the payload; failing to re-read it is
		// a bug, not a wire condition.
		panic(fmt.Sprintf("compress: error-feedback self-decode: %v", err))
	}
	for i := range v {
		c.residual[i] = c.corrected[i] - c.recon[i]
	}
	return enc, out
}

// Residual exposes the accumulated error for tests (read-only copy).
func (c *efCodec) Residual() []float64 {
	return append([]float64(nil), c.residual...)
}
