// Package compress implements model-vector compression schemes that
// complement Fed-MS's sparse uploading on the communication-efficiency
// axis: top-k and random-k sparsification, uniform quantization, and an
// error-feedback accumulator that makes biased compressors safe to use
// across rounds.
//
// The paper's sparse upload reduces *how many* servers receive a model
// (K uploads instead of K·P); these schemes reduce *how large* each
// upload is. They compose: a client can compress the one model it
// uploads.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"fedms/internal/randx"
)

// Compressed is a compressed representation of a float64 vector.
type Compressed interface {
	// Dense reconstructs the (lossy) dense vector.
	Dense() []float64
	// DenseInto reconstructs into dst (len(dst) must equal the dim).
	DenseInto(dst []float64)
	// WireBytes is the serialized size in bytes.
	WireBytes() int
	// Encode serializes the representation.
	Encode() []byte
	// AppendEncode serializes onto dst and returns the extended buffer,
	// so steady-state encoders can reuse one buffer across frames.
	AppendEncode(dst []byte) []byte
}

// Compressor maps dense vectors to compressed representations.
type Compressor interface {
	Name() string
	Compress(v []float64) Compressed
}

// ---------------------------------------------------------------------------
// Sparse representations (top-k, random-k)

// Sparse is an index/value sparse vector.
type Sparse struct {
	Dim     int
	Indices []uint32
	Values  []float64
}

// Dense implements Compressed.
func (s *Sparse) Dense() []float64 {
	out := make([]float64, s.Dim)
	s.DenseInto(out)
	return out
}

// DenseInto implements Compressed.
func (s *Sparse) DenseInto(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for i, idx := range s.Indices {
		dst[idx] = s.Values[i]
	}
}

// WireBytes implements Compressed: 8 bytes header + 4 per index + 8 per
// value.
func (s *Sparse) WireBytes() int { return 8 + len(s.Indices)*12 }

// Encode implements Compressed.
func (s *Sparse) Encode() []byte { return s.AppendEncode(nil) }

// AppendEncode implements Compressed.
func (s *Sparse) AppendEncode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Dim))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Indices)))
	for _, idx := range s.Indices {
		dst = binary.LittleEndian.AppendUint32(dst, idx)
	}
	for _, v := range s.Values {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeSparse parses a Sparse encoding. Indices must be strictly
// increasing and in range: a Byzantine or corrupted payload with
// duplicate or out-of-order indices must not silently double-write
// coordinates, so it is rejected here at the wire boundary.
func DecodeSparse(buf []byte) (*Sparse, error) {
	dim, n, err := sparseHeader(buf)
	if err != nil {
		return nil, err
	}
	s := &Sparse{Dim: dim, Indices: make([]uint32, n), Values: make([]float64, n)}
	off := 8
	prev := -1
	for i := range s.Indices {
		idx := binary.LittleEndian.Uint32(buf[off:])
		if int(idx) <= prev {
			return nil, fmt.Errorf("%w: sparse index %d after %d (must be strictly increasing)", ErrPayload, idx, prev)
		}
		if int(idx) >= dim {
			return nil, fmt.Errorf("%w: sparse index %d out of range %d", ErrPayload, idx, dim)
		}
		prev = int(idx)
		s.Indices[i] = idx
		off += 4
	}
	for i := range s.Values {
		s.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return s, nil
}

// TopK keeps the k entries with the largest magnitude. It is the
// classic biased sparsifier; combine with ErrorFeedback for
// convergence across rounds.
type TopK struct {
	// K is the number of entries to keep; if zero, Ratio is used.
	K int
	// Ratio keeps ceil(Ratio*dim) entries (used when K == 0).
	Ratio float64
}

// Name implements Compressor.
func (t TopK) Name() string {
	if t.K > 0 {
		return fmt.Sprintf("topk(k=%d)", t.K)
	}
	return fmt.Sprintf("topk(ratio=%g)", t.Ratio)
}

func (t TopK) k(dim int) int {
	k := t.K
	if k == 0 {
		k = int(math.Ceil(t.Ratio * float64(dim)))
	}
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	return k
}

// Compress implements Compressor.
func (t TopK) Compress(v []float64) Compressed {
	k := t.k(len(v))
	order := make([]int, len(v))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return math.Abs(v[order[a]]) > math.Abs(v[order[b]])
	})
	picked := order[:k]
	sort.Ints(picked)
	s := &Sparse{Dim: len(v), Indices: make([]uint32, k), Values: make([]float64, k)}
	for i, idx := range picked {
		s.Indices[i] = uint32(idx)
		s.Values[i] = v[idx]
	}
	return s
}

// RandK keeps k uniformly random entries scaled by dim/k, which makes
// the compressor unbiased in expectation.
type RandK struct {
	// K is the number of entries to keep; if zero, Ratio is used.
	K int
	// Ratio keeps ceil(Ratio*dim) entries (used when K == 0).
	Ratio float64
	// Seed drives the index selection (vary per round for fresh
	// sampling).
	Seed uint64
}

// Name implements Compressor.
func (r RandK) Name() string {
	if r.K > 0 {
		return fmt.Sprintf("randk(k=%d)", r.K)
	}
	return fmt.Sprintf("randk(ratio=%g)", r.Ratio)
}

// Compress implements Compressor.
func (r RandK) Compress(v []float64) Compressed {
	k := TopK{K: r.K, Ratio: r.Ratio}.k(len(v))
	rng := randx.New(r.Seed)
	perm := randx.Perm(rng, len(v))[:k]
	sort.Ints(perm)
	scale := float64(len(v)) / float64(k)
	s := &Sparse{Dim: len(v), Indices: make([]uint32, k), Values: make([]float64, k)}
	for i, idx := range perm {
		s.Indices[i] = uint32(idx)
		s.Values[i] = v[idx] * scale
	}
	return s
}

// ---------------------------------------------------------------------------
// Uniform quantization

// Quantized is a b-bit uniformly quantized vector.
type Quantized struct {
	Dim  int
	Bits int
	Min  float64
	Max  float64
	// Codes packs Dim codes of Bits bits each, little-endian within
	// bytes.
	Codes []byte
}

// Dense implements Compressed.
func (q *Quantized) Dense() []float64 {
	out := make([]float64, q.Dim)
	q.denseInto(out)
	return out
}

// DenseInto implements Compressed.
func (q *Quantized) DenseInto(dst []float64) { q.denseInto(dst) }

func (q *Quantized) denseInto(dst []float64) { q.denseRange(dst, 0, q.Dim) }

func (q *Quantized) code(i int) uint64 {
	bitOff := i * q.Bits
	var code uint64
	for b := 0; b < q.Bits; b++ {
		byteIdx := (bitOff + b) / 8
		bitIdx := (bitOff + b) % 8
		if q.Codes[byteIdx]&(1<<bitIdx) != 0 {
			code |= 1 << b
		}
	}
	return code
}

func (q *Quantized) setCode(i int, code uint64) {
	bitOff := i * q.Bits
	for b := 0; b < q.Bits; b++ {
		byteIdx := (bitOff + b) / 8
		bitIdx := (bitOff + b) % 8
		if code&(1<<b) != 0 {
			q.Codes[byteIdx] |= 1 << bitIdx
		}
	}
}

// WireBytes implements Compressed.
func (q *Quantized) WireBytes() int { return 24 + len(q.Codes) }

// Encode implements Compressed.
func (q *Quantized) Encode() []byte { return q.AppendEncode(nil) }

// AppendEncode implements Compressed.
func (q *Quantized) AppendEncode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.Dim))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.Bits))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(q.Min))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(q.Max))
	return append(dst, q.Codes...)
}

// DecodeQuantized parses a Quantized encoding.
func DecodeQuantized(buf []byte) (*Quantized, error) {
	if len(buf) < 24 {
		return nil, errors.New("compress: quantized encoding too short")
	}
	q := &Quantized{
		Dim:  int(binary.LittleEndian.Uint32(buf[0:])),
		Bits: int(binary.LittleEndian.Uint32(buf[4:])),
		Min:  math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
		Max:  math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
	}
	if q.Bits < 1 || q.Bits > 16 {
		return nil, fmt.Errorf("compress: invalid bit width %d", q.Bits)
	}
	want := (q.Dim*q.Bits + 7) / 8
	if len(buf) != 24+want {
		return nil, fmt.Errorf("compress: quantized encoding length %d, want %d", len(buf), 24+want)
	}
	q.Codes = append([]byte(nil), buf[24:]...)
	return q, nil
}

// Uniform quantizes each coordinate to Bits bits between the vector's
// min and max.
type Uniform struct {
	// Bits per coordinate, in [1, 16] (default 8).
	Bits int
}

// Name implements Compressor.
func (u Uniform) Name() string { return fmt.Sprintf("quantize(bits=%d)", u.bits()) }

func (u Uniform) bits() int {
	if u.Bits == 0 {
		return 8
	}
	return u.Bits
}

// Compress implements Compressor.
func (u Uniform) Compress(v []float64) Compressed {
	bits := u.bits()
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("compress: invalid bit width %d", bits))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if len(v) == 0 {
		lo, hi = 0, 0
	}
	q := &Quantized{
		Dim:   len(v),
		Bits:  bits,
		Min:   lo,
		Max:   hi,
		Codes: make([]byte, (len(v)*bits+7)/8),
	}
	levels := float64((uint64(1) << bits) - 1)
	span := hi - lo
	for i, x := range v {
		var code uint64
		if span > 0 {
			code = uint64(math.Round((x - lo) / span * levels))
		}
		q.setCode(i, code)
	}
	return q
}

// ---------------------------------------------------------------------------
// Error feedback

// ErrorFeedback wraps a (possibly biased) compressor with residual
// accumulation: each round it compresses v + residual and keeps the
// compression error for the next round, which restores convergence for
// biased sparsifiers like TopK (Stich et al., 2018).
type ErrorFeedback struct {
	inner    Compressor
	residual []float64
}

// NewErrorFeedback wraps inner.
func NewErrorFeedback(inner Compressor) *ErrorFeedback {
	return &ErrorFeedback{inner: inner}
}

// Name implements Compressor.
func (e *ErrorFeedback) Name() string { return "ef(" + e.inner.Name() + ")" }

// Compress implements Compressor.
func (e *ErrorFeedback) Compress(v []float64) Compressed {
	if e.residual == nil {
		e.residual = make([]float64, len(v))
	}
	if len(e.residual) != len(v) {
		panic("compress: ErrorFeedback dimension changed")
	}
	corrected := make([]float64, len(v))
	for i := range v {
		corrected[i] = v[i] + e.residual[i]
	}
	c := e.inner.Compress(corrected)
	dense := c.Dense()
	for i := range v {
		e.residual[i] = corrected[i] - dense[i]
	}
	return c
}

// Residual returns the current accumulated error (read-only copy).
func (e *ErrorFeedback) Residual() []float64 {
	return append([]float64(nil), e.residual...)
}

var (
	_ Compressor = TopK{}
	_ Compressor = RandK{}
	_ Compressor = Uniform{}
	_ Compressor = (*ErrorFeedback)(nil)
	_ Compressed = (*Sparse)(nil)
	_ Compressed = (*Quantized)(nil)
)
