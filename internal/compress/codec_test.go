package compress

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"fedms/internal/randx"
)

func TestParseSpecCanonical(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "dense"},
		{"dense", "dense"},
		{"none", "dense"},
		{"  Dense ", "dense"},
		{"topk:0.05", "topk:0.05"},
		{"TOPK:0.5", "topk:0.5"},
		{"randk:1", "randk:1"},
		{"q8", "q8"},
		{"q1", "q1"},
		{"q16", "q16"},
		{"ef+topk:0.1", "ef+topk:0.1"},
		{"ef+q4", "ef+q4"},
		{"ef+randk:0.25", "ef+randk:0.25"},
	}
	for _, c := range cases {
		sp, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got := sp.String(); got != c.want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// The canonical form must re-parse to the same spec.
		again, err := ParseSpec(sp.String())
		if err != nil || again != sp {
			t.Errorf("canonical %q did not round-trip: %+v vs %+v (%v)", sp, again, sp, err)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"gzip", "topk", "topk:", "topk:0", "topk:1.5", "topk:-0.1", "topk:x",
		"randk:0", "randk:2", "q0", "q17", "q", "qx", "ef+dense", "ef+", "ef+gzip",
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", s)
		}
	}
}

func TestSpecValidateMatchesParse(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero Spec must be valid dense: %v", err)
	}
	if err := (Spec{Kind: "topk", Ratio: 2}).Validate(); err == nil {
		t.Fatal("out-of-range ratio must fail Validate")
	}
	if err := (Spec{Kind: "q", Bits: 32}).Validate(); err == nil {
		t.Fatal("out-of-range bits must fail Validate")
	}
}

// codecTestVec builds a deterministic dense vector with a few dominant
// coordinates so top-k selection is unambiguous.
func codecTestVec(seed uint64, d int) []float64 {
	v := make([]float64, d)
	randx.Normal(randx.New(seed), v, 0, 1)
	v[0], v[d/2], v[d-1] = 40, -35, 30
	return v
}

func TestCodecRoundTripAllSpecs(t *testing.T) {
	const d = 257
	v := codecTestVec(7, d)
	for _, spec := range []string{"dense", "topk:0.1", "randk:0.1", "q8", "ef+topk:0.1", "ef+q8"} {
		sp, err := ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		c, err := sp.NewCodec(11)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != sp.String() {
			t.Errorf("%s: Name() = %q, want %q", spec, c.Name(), sp.String())
		}
		// AppendEncode must append after an existing prefix.
		prefix := []byte("hdr")
		enc, out := c.AppendEncode(append([]byte(nil), prefix...), v)
		if !bytes.HasPrefix(out, prefix) {
			t.Fatalf("%s: AppendEncode clobbered the prefix", spec)
		}
		payload := out[len(prefix):]
		if !KnownEncoding(enc) {
			t.Fatalf("%s: unknown encoding tag %d", spec, enc)
		}
		dim, err := PayloadDim(enc, payload)
		if err != nil || dim != d {
			t.Fatalf("%s: PayloadDim = %d, %v; want %d", spec, dim, err, d)
		}
		got, err := DecodePayload(enc, payload)
		if err != nil {
			t.Fatalf("%s: DecodePayload: %v", spec, err)
		}
		if len(got) != d {
			t.Fatalf("%s: decoded %d coords, want %d", spec, len(got), d)
		}
		if spec == "dense" {
			for i := range v {
				if got[i] != v[i] {
					t.Fatalf("dense codec must be exact at %d: %v vs %v", i, got[i], v[i])
				}
			}
		}
		// The dominant coordinates survive every lossy codec here.
		if math.Abs(got[0]-v[0]) > math.Abs(v[0])/2 && sp.Kind != "randk" {
			t.Errorf("%s: dominant coordinate lost: %v vs %v", spec, got[0], v[0])
		}
	}
}

func TestDecodeSparseRejectsDuplicateIndices(t *testing.T) {
	s := Sparse{Dim: 10, Indices: []uint32{3, 3}, Values: []float64{1, 2}}
	if _, err := DecodeSparse(s.Encode()); !errors.Is(err, ErrPayload) {
		t.Fatalf("duplicate indices accepted: %v", err)
	}
}

func TestDecodeSparseRejectsOutOfOrderIndices(t *testing.T) {
	s := Sparse{Dim: 10, Indices: []uint32{5, 2}, Values: []float64{1, 2}}
	if _, err := DecodeSparse(s.Encode()); !errors.Is(err, ErrPayload) {
		t.Fatalf("out-of-order indices accepted: %v", err)
	}
}

func TestDecodeSparseRejectsOutOfRangeIndex(t *testing.T) {
	s := Sparse{Dim: 10, Indices: []uint32{2, 10}, Values: []float64{1, 2}}
	if _, err := DecodeSparse(s.Encode()); !errors.Is(err, ErrPayload) {
		t.Fatalf("out-of-range index accepted: %v", err)
	}
}

func TestDecodeSparseAcceptsStrictlyIncreasing(t *testing.T) {
	s := Sparse{Dim: 10, Indices: []uint32{0, 4, 9}, Values: []float64{1, 2, 3}}
	got, err := DecodeSparse(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	dense := got.Dense()
	if dense[0] != 1 || dense[4] != 2 || dense[9] != 3 {
		t.Fatalf("scatter wrong: %v", dense)
	}
}

func TestDecodePayloadUnknownEncoding(t *testing.T) {
	if _, err := DecodePayload(Encoding(9), []byte{1, 2, 3}); !errors.Is(err, ErrPayload) {
		t.Fatalf("unknown encoding accepted: %v", err)
	}
	if err := DecodePayloadInto(make([]float64, 1), Encoding(9), nil); !errors.Is(err, ErrPayload) {
		t.Fatalf("unknown encoding accepted by Into: %v", err)
	}
}

func TestDecodePayloadIntoDimMismatch(t *testing.T) {
	sp, _ := ParseSpec("q8")
	c, _ := sp.NewCodec(0)
	enc, payload := c.AppendEncode(nil, codecTestVec(3, 64))
	if err := DecodePayloadInto(make([]float64, 63), enc, payload); !errors.Is(err, ErrPayload) {
		t.Fatalf("dim mismatch accepted: %v", err)
	}
}

// TestErrorFeedbackResidualBounded: with bounded inputs, the EF residual
// must not blow up over many rounds — the compression error is fed back
// and re-compressed, never accumulated unboundedly.
func TestErrorFeedbackResidualBounded(t *testing.T) {
	const d, rounds = 128, 300
	sp, _ := ParseSpec("ef+topk:0.1")
	c, err := sp.NewCodec(3)
	if err != nil {
		t.Fatal(err)
	}
	ef := c.(*efCodec)
	rng := randx.New(99)
	v := make([]float64, d)
	var buf []byte
	for r := 0; r < rounds; r++ {
		randx.Normal(rng, v, 0, 1)
		_, buf = c.AppendEncode(buf[:0], v)
		var norm float64
		for _, x := range ef.Residual() {
			norm = math.Max(norm, math.Abs(x))
		}
		// Inputs are N(0,1): an exploding feedback loop would push the
		// residual sup-norm far beyond the input scale within 300 rounds.
		if norm > 50 {
			t.Fatalf("round %d: residual sup-norm %v diverged", r, norm)
		}
	}
}

// TestErrorFeedbackMeanConvergesToDense: recon_t = v + r_{t-1} - r_t
// telescopes, so the time-average of EF+TopK reconstructions of a fixed
// vector converges to the vector itself — the property that makes EF
// uploads unbiased in the long run where plain TopK stalls.
func TestErrorFeedbackMeanConvergesToDense(t *testing.T) {
	const d, rounds = 64, 400
	v := codecTestVec(21, d)
	sp, _ := ParseSpec("ef+topk:0.1")
	c, err := sp.NewCodec(5)
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]float64, d)
	recon := make([]float64, d)
	var buf []byte
	for r := 0; r < rounds; r++ {
		enc, out := c.AppendEncode(buf[:0], v)
		buf = out
		if err := DecodePayloadInto(recon, enc, buf); err != nil {
			t.Fatal(err)
		}
		for i := range sum {
			sum[i] += recon[i]
		}
	}
	for i := range sum {
		mean := sum[i] / rounds
		if math.Abs(mean-v[i]) > 0.2 {
			t.Fatalf("coord %d: EF mean %v, dense %v", i, mean, v[i])
		}
	}
}

// TestCodecDeterministicPerSeed: two instances with the same spec and
// seed must emit byte-identical payload sequences — the property the
// engine/distributed parity tests build on.
func TestCodecDeterministicPerSeed(t *testing.T) {
	const d = 96
	for _, spec := range []string{"topk:0.2", "randk:0.2", "q6", "ef+topk:0.2"} {
		sp, _ := ParseSpec(spec)
		a, err := sp.NewCodec(42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sp.NewCodec(42)
		if err != nil {
			t.Fatal(err)
		}
		rng := randx.New(1)
		v := make([]float64, d)
		for r := 0; r < 5; r++ {
			randx.Normal(rng, v, 0, 1)
			encA, bufA := a.AppendEncode(nil, v)
			encB, bufB := b.AppendEncode(nil, v)
			if encA != encB || !bytes.Equal(bufA, bufB) {
				t.Fatalf("%s round %d: same seed, different payloads", spec, r)
			}
		}
		// A different seed must change randk's sampled support.
		if sp.Kind == "randk" {
			other, _ := sp.NewCodec(43)
			randx.Normal(rng, v, 0, 1)
			_, bufA := a.AppendEncode(nil, v)
			_, bufO := other.AppendEncode(nil, v)
			if bytes.Equal(bufA, bufO) {
				t.Fatal("randk: different seeds produced identical payloads")
			}
		}
	}
}

func TestSpecEncodeDecodeMatchesCodec(t *testing.T) {
	const d = 80
	v := codecTestVec(9, d)
	sp, _ := ParseSpec("q8")
	got, n, err := sp.EncodeDecode(v)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := sp.NewCodec(0)
	enc, payload := c.AppendEncode(nil, v)
	if n != len(payload) {
		t.Fatalf("EncodeDecode bytes = %d, payload = %d", n, len(payload))
	}
	want := make([]float64, d)
	if err := DecodePayloadInto(want, enc, payload); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EncodeDecode diverges from codec at %d", i)
		}
	}
}
