package node

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/compress"
	"fedms/internal/obs"
	"fedms/internal/transport"
)

// stripTimingFields removes the wall-clock fields from a trace event so
// two runs of the same seeded scenario can be compared field for field.
func stripTimingFields(evs []obs.Event) []obs.Event {
	out := make([]obs.Event, len(evs))
	for i, ev := range evs {
		fields := make(map[string]float64, len(ev.Fields))
		for k, v := range ev.Fields {
			if k == "barrier_ms" || k == "recv_wait_ms" {
				continue
			}
			fields[k] = v
		}
		ev.Fields = fields
		out[i] = ev
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Round != out[j].Round {
			return out[i].Round < out[j].Round
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func assertSameTraces(t *testing.T, a, b []obs.Event, context string) {
	t.Helper()
	a, b = stripTimingFields(a), stripTimingFields(b)
	if len(a) != len(b) {
		t.Fatalf("%s: %d events vs %d", context, len(a), len(b))
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Round != b[i].Round || a[i].Name != b[i].Name {
			t.Fatalf("%s: event %d is %s/%d/%s vs %s/%d/%s",
				context, i, a[i].Node, a[i].Round, a[i].Name, b[i].Node, b[i].Round, b[i].Name)
		}
		if len(a[i].Fields) != len(b[i].Fields) {
			t.Fatalf("%s: event %d field count %d vs %d", context, i, len(a[i].Fields), len(b[i].Fields))
		}
		for k, v := range a[i].Fields {
			if w, ok := b[i].Fields[k]; !ok || v != w {
				t.Fatalf("%s: event %d (%s/%d/%s) field %s: %v vs %v",
					context, i, a[i].Node, a[i].Round, a[i].Name, k, v, w)
			}
		}
	}
}

// TestChaosFusedOffParity is the fused-aggregation chaos regression:
// the same seeded chaos scenario — sparse codec uploads on a faulted
// uplink, encoded downlinks, tolerant PSs — run once on the fused
// payload path and once with every rule wrapped in NoFuse must produce
// bit-identical final models, identical server statistics and
// identical round traces (timing fields aside). The registries must
// also prove that each arm actually took the path it claims.
func TestChaosFusedOffParity(t *testing.T) {
	base := chaosOpts{
		k: 4, p: 2, rounds: 5, seed: 101,
		filter:        aggregate.TrimmedMean{Beta: 0.2},
		psTolerant:    true,
		psTimeout:     2 * time.Second,
		clientTimeout: 8 * time.Second,
		// The pinned-deterministic mixed schedule of the chaos tier.
		clientFaults: transport.FaultConfig{Seed: 7, Drop: 0.1, Corrupt: 0.1, Duplicate: 0.1},
		upCodec:      mustSpec(t, "topk:0.25"),
		downCodec:    mustSpec(t, "topk:0.5"),
	}

	fused := base
	fused.reg = obs.NewRegistry()
	fused.traceSink = obs.NewTrace(0)
	fusedParams, fusedStats, _ := runChaos(t, fused)

	off := base
	off.filter = aggregate.NoFuse{Rule: base.filter}
	off.serverRule = aggregate.NoFuse{Rule: aggregate.Mean{}}
	off.reg = obs.NewRegistry()
	off.traceSink = obs.NewTrace(0)
	offParams, offStats, _ := runChaos(t, off)

	assertSameParams(t, fusedParams, offParams, "fused on vs off")
	for i := range fusedStats {
		if fusedStats[i] != offStats[i] {
			t.Fatalf("PS %d stats diverge: fused %+v, off %+v", i, fusedStats[i], offStats[i])
		}
	}
	assertSameTraces(t, fused.traceSink.Events(), off.traceSink.Events(), "fused on vs off")

	counter := func(reg *obs.Registry, name string) int64 { return reg.Counter(name).Value() }
	for i := 0; i < base.p; i++ {
		l := fmt.Sprintf(`{ps="%d"}`, i)
		if n := counter(fused.reg, "fedms_ps_agg_fused_total"+l); n == 0 {
			t.Fatalf("fused arm: PS %d reported no fused aggregations", i)
		}
		if n := counter(off.reg, "fedms_ps_agg_fused_total"+l); n != 0 {
			t.Fatalf("NoFuse arm: PS %d reported %d fused aggregations", i, n)
		}
		if n := counter(off.reg, "fedms_ps_agg_fallback_total"+l); n == 0 {
			t.Fatalf("NoFuse arm: PS %d reported no fallback aggregations", i)
		}
	}
	for k := 0; k < base.k; k++ {
		l := fmt.Sprintf(`{client="%d"}`, k)
		if n := counter(fused.reg, "fedms_client_filter_fused_total"+l); n == 0 {
			t.Fatalf("fused arm: client %d reported no fused filter rounds", k)
		}
		if n := counter(off.reg, "fedms_client_filter_fused_total"+l); n != 0 {
			t.Fatalf("NoFuse arm: client %d reported %d fused filter rounds", k, n)
		}
	}
}

// TestPSCorruptSparseFramePayloadDegradesLikeDrop pins the rejection
// boundary of the fused path at the wire: a checksummed upload frame
// whose sparse payload is malformed (duplicate indices — the codecs
// never emit them, so the sender is lying) must be rejected by
// ParsePayload before any accumulator sees it, and the tolerant PS must
// degrade it exactly like a dropped frame: counted missed, connection
// kept, the round's aggregate built from the remaining honest upload.
func TestPSCorruptSparseFramePayloadDegradesLikeDrop(t *testing.T) {
	const dim = 6
	good := []float64{1, 2, 0, 0, 3, 4}

	reg := obs.NewRegistry()
	p := &PS{cfg: PSConfig{
		ID: 0, Clients: 2, Rounds: 1,
		Tolerant:   true,
		Timeout:    2 * time.Second,
		ServerRule: aggregate.Mean{},
	}}
	p.om = newPSMetrics(reg, 0, "mean")
	p.v2ok = []bool{true, true}

	srv0, cli0 := net.Pipe()
	srv1, cli1 := net.Pipe()
	conns := []*transport.Conn{transport.NewConn(srv0), transport.NewConn(srv1)}
	c0 := transport.NewConn(cli0)
	c1 := transport.NewConn(cli1)
	// Asymmetric deadlines. Server-side recv stays short: skipping the
	// bad frame re-enters Recv, which re-arms the per-frame Timeout and
	// may clobber the barrier's straggler trim, so this — not the trim —
	// is what bounds the lying client's stall. Client-side recv is
	// generous because race-instrumented parallel package runs can
	// starve this test of CPU for seconds at a time.
	for _, c := range conns {
		c.Timeout = 2 * time.Second
	}
	c0.Timeout = 30 * time.Second
	c1.Timeout = 30 * time.Second

	// A syntactically well-formed frame whose sparse payload repeats an
	// index: it passes every transport-layer check (length, checksum)
	// and must die in ParsePayload.
	dupSparse := compress.Sparse{
		Dim:     dim,
		Indices: []uint32{2, 2},
		Values:  []float64{1e9, -1e9},
	}
	dupPayload := dupSparse.AppendEncode(nil)

	type recv struct {
		vec []float64
		err error
	}
	got := make(chan recv, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // client 0: honest dense upload, then read the model
		defer wg.Done()
		if err := c0.Send(&transport.Message{
			Type: transport.TypeUpload, Round: 0, Sender: 0, Flag: 1,
			Vec: append([]float64(nil), good...),
		}); err != nil {
			got <- recv{err: err}
			return
		}
		m, err := c0.Recv()
		if err != nil {
			got <- recv{err: err}
			return
		}
		got <- recv{vec: m.Vec}
	}()
	go func() { // client 1: the lying frame, then read the model
		defer wg.Done()
		if err := c1.Send(&transport.Message{
			Type: transport.TypeUpload, Round: 0, Sender: 1, Flag: 1,
			Enc: compress.EncSparse, Payload: dupPayload,
		}); err != nil {
			got <- recv{err: err}
			return
		}
		m, err := c1.Recv()
		if err != nil {
			got <- recv{err: err}
			return
		}
		got <- recv{vec: m.Vec}
	}()

	pending := make([]*transport.Message, 2)
	if err := p.serveRound(0, conns, pending); err != nil {
		t.Fatalf("serveRound: %v", err)
	}
	wg.Wait()
	close(got)
	for r := range got {
		if r.err != nil {
			t.Fatalf("client: %v", r.err)
		}
		// Mean over the single surviving member is that member's model.
		if len(r.vec) != dim {
			t.Fatalf("downlink dim %d, want %d", len(r.vec), dim)
		}
		for j := range good {
			if r.vec[j] != good[j] {
				t.Fatalf("aggregate coord %d = %v, want %v (bad payload leaked into the accumulator?)",
					j, r.vec[j], good[j])
			}
		}
	}

	st := p.Stats()
	if st.UploadsReceived != 1 {
		t.Fatalf("UploadsReceived = %d, want 1", st.UploadsReceived)
	}
	if st.UploadsMissed != 1 {
		t.Fatalf("UploadsMissed = %d, want 1 (malformed payload must degrade like a drop)", st.UploadsMissed)
	}
	if st.ClientsLost != 0 {
		t.Fatalf("ClientsLost = %d, want 0 (the connection must survive)", st.ClientsLost)
	}
	if conns[1] == nil {
		t.Fatal("lying client's connection was condemned; want kept")
	}
	if n := reg.Counter(`fedms_ps_frames_skipped_total{ps="0"}`).Value(); n != 1 {
		t.Fatalf("frames_skipped = %d, want 1", n)
	}
	if n := reg.Counter(`fedms_ps_agg_fused_total{ps="0"}`).Value(); n != 1 {
		t.Fatalf("agg_fused = %d, want 1", n)
	}
}
