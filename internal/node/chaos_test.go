package node

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/attack"
	"fedms/internal/compress"
	"fedms/internal/core"
	"fedms/internal/nn"
	"fedms/internal/obs"
	"fedms/internal/randx"
	"fedms/internal/transport"
)

// chaosOpts parameterizes one deterministic chaos scenario.
type chaosOpts struct {
	k, p, rounds int
	seed         uint64
	filter       aggregate.Rule
	// serverRule overrides the PS aggregation rule (nil keeps the
	// default Mean); the fused-parity tier wraps it in NoFuse.
	serverRule aggregate.Rule
	minModels  int
	redial     bool
	psTolerant bool
	// clientFaults faults the upload direction (links "c<k>->ps<i>"),
	// psFaults the dissemination direction ("ps<i>->c<k>").
	clientFaults transport.FaultConfig
	psFaults     transport.FaultConfig
	// crashAfter schedules PS crashes: id -> rounds served before the
	// crash.
	crashAfter map[int]int
	byz        map[int]attack.Attack
	// upCodec/downCodec put codec frames on the faulted links; the zero
	// Spec keeps the wire dense.
	upCodec   compress.Spec
	downCodec compress.Spec

	// async switches the scenario to the windowed lifecycle; window,
	// staleness and latencyScale mirror the node configs (zero picks the
	// node defaults). spillDir/spillMem shape the PS spill tier, and
	// checkpoint maps a PS id to its checkpoint path. serverRule must be
	// weighted (nil Mean is) when async is set.
	async        bool
	window       time.Duration
	staleness    int
	latencyScale time.Duration
	spillDir     string
	spillMem     int
	checkpoint   map[int]string

	// flood hammers every PS listener with this many junk connections
	// (garbage bytes, wrong-type frames, forged-length headers) spread
	// over the whole run — accept phase and rounds alike. The ingest
	// path must shed them all: the scenario's models and stats are
	// asserted bit-identical to the flood-free run.
	flood int

	psTimeout     time.Duration
	clientTimeout time.Duration
	onRound       func(client, round int, received map[int][]float64, filtered []float64)

	// Observability hooks shared by every node in the scenario. The obs
	// determinism contract (TestObsDeterminism*) runs the same seeded
	// chaos with and without them and demands bit-identical models.
	reg       *obs.Registry
	traceSink *obs.Trace
	logger    *slog.Logger
}

// runChaos executes a full distributed run under the scenario and
// returns final client params, per-PS stats and per-client round stats.
// Scheduled crashes (ErrCrashed) are part of the scenario, not
// failures.
func runChaos(t *testing.T, o chaosOpts) ([][]float64, []PSStats, [][]ClientRoundStats) {
	t.Helper()
	learners := makeLearners(t, o.k, o.seed)
	var cfi, pfi *transport.FaultInjector
	if o.clientFaults.Enabled() {
		cfi = transport.NewFaultInjector(o.clientFaults)
	}
	if o.psFaults.Enabled() {
		pfi = transport.NewFaultInjector(o.psFaults)
	}

	servers := make([]*PS, o.p)
	addrs := make([]string, o.p)
	for i := 0; i < o.p; i++ {
		var dc compress.Codec
		if !o.downCodec.IsDense() {
			var err error
			dc, err = o.downCodec.NewCodec(randx.Derive(o.seed, fmt.Sprintf("downlink/ps%d", i)))
			if err != nil {
				t.Fatal(err)
			}
		}
		ps, err := NewPS(PSConfig{
			ID:              i,
			ListenAddr:      "127.0.0.1:0",
			Clients:         o.k,
			Rounds:          o.rounds,
			Attack:          o.byz[i],
			ServerRule:      o.serverRule,
			Seed:            o.seed,
			Timeout:         o.psTimeout,
			Tolerant:        o.psTolerant,
			Faults:          pfi,
			CrashAfterRound: o.crashAfter[i],
			DownlinkCodec:   dc,
			Async:           o.async,
			Window:          o.window,
			Staleness:       o.staleness,
			SpillDir:        o.spillDir,
			SpillMem:        o.spillMem,
			CheckpointPath:  o.checkpoint[i],
			Logger:          o.logger,
			Obs:             o.reg,
			TraceSink:       o.traceSink,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = ps
		addrs[i] = ps.Addr()
	}

	// The junk storm runs concurrently with the entire federation; its
	// dial errors are expected once listeners start closing.
	var floodWG sync.WaitGroup
	if o.flood > 0 {
		const workers = 32
		junk := [][]byte{
			[]byte("GET / HTTP/1.1\r\nHost: ps\r\n\r\n"),
			[]byte("SSH-2.0-OpenSSH_9.6\r\n"),
			transport.Encode(&transport.Message{Type: transport.TypeUpload, Flag: 1, Vec: []float64{1, 2}}),
			floodForgedFrame(),
			{0xD5, 0xFE}, // magic then silence (truncated header)
		}
		floodWG.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer floodWG.Done()
				for i := w; i < o.flood; i += workers {
					raw, err := net.DialTimeout("tcp", addrs[i%o.p], time.Second)
					if err != nil {
						continue
					}
					_, _ = raw.Write(junk[i%len(junk)])
					_ = raw.Close()
				}
			}(w)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, o.p+o.k)
	for _, ps := range servers {
		wg.Add(1)
		go func(ps *PS) {
			defer wg.Done()
			if err := ps.Serve(); err != nil && !errors.Is(err, ErrCrashed) {
				errCh <- err
			}
		}(ps)
	}
	clientStats := make([][]ClientRoundStats, o.k)
	for id, l := range learners {
		wg.Add(1)
		go func(id int, l core.Learner) {
			defer wg.Done()
			var hook func(round int, received map[int][]float64, filtered []float64)
			if o.onRound != nil {
				hook = func(round int, received map[int][]float64, filtered []float64) {
					o.onRound(id, round, received, filtered)
				}
			}
			var uc compress.Codec
			if !o.upCodec.IsDense() {
				var err error
				uc, err = o.upCodec.NewCodec(core.ClientCodecSeed(o.seed, id))
				if err != nil {
					errCh <- err
					return
				}
			}
			st, err := RunClient(ClientConfig{
				ID:                    id,
				Learner:               l,
				Servers:               addrs,
				Rounds:                o.rounds,
				LocalSteps:            2,
				Filter:                o.filter,
				Schedule:              nn.ConstantLR(0.3),
				Seed:                  o.seed,
				Timeout:               o.clientTimeout,
				MinModels:             o.minModels,
				Redial:                o.redial,
				Faults:                cfi,
				OnRound:               hook,
				Codec:                 uc,
				AcceptEncodedDownlink: !o.downCodec.IsDense(),
				Async:                 o.async,
				Window:                o.window,
				Staleness:             o.staleness,
				LatencyScale:          o.latencyScale,
				Logger:                o.logger,
				Obs:                   o.reg,
				TraceSink:             o.traceSink,
			})
			if err != nil {
				errCh <- err
				return
			}
			clientStats[id] = st
		}(id, l)
	}
	wg.Wait()
	floodWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("chaos run failed: %v", err)
	}

	params := make([][]float64, o.k)
	for i, l := range learners {
		params[i] = l.Params()
	}
	stats := make([]PSStats, o.p)
	for i, ps := range servers {
		stats[i] = ps.Stats()
	}
	return params, stats, clientStats
}

// floodForgedFrame builds a hello whose length field claims the
// protocol-maximum body — the unbounded-Decode attack shape: a
// pre-fix server would allocate 512 MB from this header before any
// validation. The prefilter must reject it from the peeked header.
func floodForgedFrame() []byte {
	frame := transport.Encode(&transport.Message{Type: transport.TypeHello, Flag: 1, Vec: []float64{1}})
	binary.LittleEndian.PutUint32(frame[20:], uint32(transport.MaxVecLen))
	return frame[:24] // header only: claim big, send nothing
}

// TestChaosFloodJunkStorm is the connection-flood chaos gate: a healthy
// tolerant federation hammered by thousands of junk connections —
// garbage preambles, wrong-type frames, forged 512 MB length claims,
// truncated headers — must produce the bit-identical final model of
// the flood-free run, with every round served and every upload
// received. The flood overlaps the accept phase and the rounds; the
// shed/prefilter path is the only thing standing between it and the
// protocol. 10k connections under -race is the verify-stage load; the
// short-mode run keeps a meaningful storm.
func TestChaosFloodJunkStorm(t *testing.T) {
	flood := 10000
	if testing.Short() {
		flood = 1000
	}
	base := chaosOpts{
		k: 4, p: 2, rounds: 3, seed: 404,
		filter:        aggregate.TrimmedMean{Beta: 0.2},
		psTolerant:    true,
		psTimeout:     5 * time.Second,
		clientTimeout: 10 * time.Second,
	}
	clean, _, _ := runChaos(t, base)

	stormy := base
	stormy.flood = flood
	stormed, stats, _ := runChaos(t, stormy)

	assertSameParams(t, clean, stormed, "junk storm vs clean run")
	uploads := 0
	for i, st := range stats {
		if st.RoundsServed != base.rounds {
			t.Fatalf("PS %d protocol perturbed by flood: %+v", i, st)
		}
		if st.UploadsMissed != 0 || st.ClientsLost != 0 {
			t.Fatalf("PS %d lost honest traffic under flood: %+v", i, st)
		}
		uploads += st.UploadsReceived
	}
	// The sparse-upload rule sends each client's model to exactly one
	// PS per round; the flood must not cost a single one.
	if uploads != base.k*base.rounds {
		t.Fatalf("uploads received %d, want %d", uploads, base.k*base.rounds)
	}
}

// TestChaosUploadFaultScenarios is the table-driven chaos tier: each
// scenario faults the upload direction under a tolerant PS, and must
// (a) complete all rounds, (b) keep every client on the identical final
// model (dissemination is clean, so models agree), and (c) reproduce
// the exact same final model when rerun with the same seed.
func TestChaosUploadFaultScenarios(t *testing.T) {
	// psTimeout is the PS's per-frame receive window, i.e. the round
	// barrier: an honest upload that arrives later than this is counted
	// missed, which would make (c) depend on scheduler load rather than
	// on the seeded fault schedule. The tolerant PS caps a dropped
	// frame's stall at half this window (the straggler deadline in
	// serveRound), leaving the other half as margin for next round's
	// honest uploads; a generous window therefore costs little wall
	// time and keeps the injected faults the only source of misses
	// even under the race detector.
	base := chaosOpts{
		k: 4, p: 2, rounds: 5, seed: 101,
		filter:        aggregate.TrimmedMean{Beta: 0.2},
		psTolerant:    true,
		psTimeout:     2 * time.Second,
		clientTimeout: 8 * time.Second,
	}
	scenarios := []struct {
		name       string
		faults     transport.FaultConfig
		wantMissed bool
	}{
		{"drop-only", transport.FaultConfig{Seed: 7, Drop: 0.2}, true},
		{"corrupt-only", transport.FaultConfig{Seed: 7, Corrupt: 0.25}, true},
		{"duplicate-only", transport.FaultConfig{Seed: 7, Duplicate: 0.3}, false},
		{"mixed", transport.FaultConfig{Seed: 7, Drop: 0.1, Corrupt: 0.1, Duplicate: 0.1}, true},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			o := base
			o.clientFaults = sc.faults

			params, stats, clientStats := runChaos(t, o)
			for _, st := range clientStats {
				if len(st) != o.rounds {
					t.Fatalf("client completed %d rounds, want %d", len(st), o.rounds)
				}
			}
			for i := 1; i < o.k; i++ {
				assertSameParams(t, [][]float64{params[0]}, [][]float64{params[i]}, "client agreement")
			}
			missed := 0
			for _, st := range stats {
				missed += st.UploadsMissed
				if st.RoundsServed != o.rounds {
					t.Fatalf("PS served %d rounds, want %d", st.RoundsServed, o.rounds)
				}
				if st.ClientsLost != 0 {
					t.Fatalf("PS lost %d clients under recoverable faults", st.ClientsLost)
				}
			}
			if sc.wantMissed && missed == 0 {
				t.Fatal("no uploads missed — fault schedule never fired")
			}
			if !sc.wantMissed && missed != 0 {
				t.Fatalf("%d uploads missed under loss-free faults", missed)
			}

			again, _, _ := runChaos(t, o)
			assertSameParams(t, params, again, "seeded rerun")
		})
	}
}

// TestChaosDelayOnlyMatchesEngine: injected delays below every timeout
// lose nothing, so the distributed run must stay bit-identical to the
// in-process engine — chaos that only reorders time cannot change the
// computation.
func TestChaosDelayOnlyMatchesEngine(t *testing.T) {
	const k, p, rounds, seed = 4, 3, 4, 102
	delay := transport.FaultConfig{Seed: 5, Delay: 0.5, MaxDelay: 5 * time.Millisecond}
	params, _, _ := runChaos(t, chaosOpts{
		k: k, p: p, rounds: rounds, seed: seed,
		filter:        aggregate.TrimmedMean{Beta: 0.2},
		clientFaults:  delay,
		psFaults:      delay,
		psTimeout:     5 * time.Second,
		clientTimeout: 5 * time.Second,
	})
	eng := runEngine(t, makeLearners(t, k, seed), p, rounds, 0, nil,
		attack.None{}, aggregate.TrimmedMean{Beta: 0.2}, seed)
	assertSameParams(t, params, eng, "delay-only chaos vs engine")
}

// TestChaosCrashBenignPS: one benign PS crashes mid-training; every
// client must degrade to P' = P-1 models from the crash round on,
// surface the shortfall in its stats, and still agree on the final
// model.
func TestChaosCrashBenignPS(t *testing.T) {
	const crashRounds = 2
	o := chaosOpts{
		k: 3, p: 4, rounds: 4, seed: 103,
		filter:        aggregate.TrimmedMean{Beta: 0.25},
		minModels:     3,
		crashAfter:    map[int]int{3: crashRounds},
		psTimeout:     5 * time.Second,
		clientTimeout: 2 * time.Second,
	}
	params, stats, clientStats := runChaos(t, o)
	for i := 1; i < o.k; i++ {
		assertSameParams(t, [][]float64{params[0]}, [][]float64{params[i]}, "client agreement")
	}
	for id, st := range clientStats {
		if len(st) != o.rounds {
			t.Fatalf("client %d completed %d rounds, want %d", id, len(st), o.rounds)
		}
		for _, rs := range st {
			if rs.Round < crashRounds {
				if rs.Degraded || rs.ModelsReceived != o.p {
					t.Fatalf("client %d round %d: degraded before the crash: %+v", id, rs.Round, rs)
				}
			} else if !rs.Degraded || rs.ModelsReceived != o.p-1 {
				t.Fatalf("client %d round %d: shortfall not surfaced: %+v", id, rs.Round, rs)
			}
		}
	}
	if stats[3].RoundsServed != crashRounds {
		t.Fatalf("crashed PS served %d rounds, want %d", stats[3].RoundsServed, crashRounds)
	}

	again, _, _ := runChaos(t, o)
	assertSameParams(t, params, again, "seeded rerun")
}

// TestChaosCrashPlusByzantine is the integration acceptance criterion:
// P=5, B=1 Byzantine PS, plus one benign PS crashed mid-run. Every
// round's filtered model must stay within the coordinate-wise bounds of
// the benign models that actually arrived (Lemma 2 under partial
// participation), and the run must stay deterministic.
func TestChaosCrashPlusByzantine(t *testing.T) {
	const byzID = 4
	var mu sync.Mutex
	violations := 0
	o := chaosOpts{
		k: 4, p: 5, rounds: 4, seed: 104,
		filter:        aggregate.TrimmedMean{Beta: 0.2},
		minModels:     3,
		crashAfter:    map[int]int{2: 2},
		byz:           map[int]attack.Attack{byzID: attack.Noise{Sigma: 10}},
		psTimeout:     5 * time.Second,
		clientTimeout: 2 * time.Second,
		onRound: func(client, round int, received map[int][]float64, filtered []float64) {
			dim := len(filtered)
			for j := 0; j < dim; j++ {
				lo, hi := math.Inf(1), math.Inf(-1)
				for ps, vec := range received {
					if ps == byzID {
						continue
					}
					lo = math.Min(lo, vec[j])
					hi = math.Max(hi, vec[j])
				}
				if filtered[j] < lo-1e-9 || filtered[j] > hi+1e-9 {
					mu.Lock()
					violations++
					mu.Unlock()
					return
				}
			}
		},
	}
	params, _, clientStats := runChaos(t, o)
	if violations != 0 {
		t.Fatalf("filtered model left the benign coordinate bounds in %d rounds", violations)
	}
	for i := 1; i < o.k; i++ {
		assertSameParams(t, [][]float64{params[0]}, [][]float64{params[i]}, "client agreement")
	}
	for id, st := range clientStats {
		if len(st) != o.rounds {
			t.Fatalf("client %d completed %d rounds, want %d", id, len(st), o.rounds)
		}
		if !st[o.rounds-1].Degraded || st[o.rounds-1].ModelsReceived != o.p-1 {
			t.Fatalf("client %d final round not degraded to P-1: %+v", id, st[o.rounds-1])
		}
	}

	again, _, _ := runChaos(t, o)
	assertSameParams(t, params, again, "seeded rerun")
}

// TestChaosCrashRestart: a PS crashes after two rounds and is restarted
// at the round its clients will send next; redialling clients must fold
// it back into the federation and finish all rounds.
func TestChaosCrashRestart(t *testing.T) {
	const k, p, rounds, seed = 3, 2, 6, 105
	const crashRounds = 2 // ps1 serves rounds 0-1, misses round 2, rejoins at 3
	learners := makeLearners(t, k, seed)

	ps0, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: k, Rounds: rounds,
		Seed: seed, Timeout: 5 * time.Second, Tolerant: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ps1, err := NewPS(PSConfig{
		ID: 1, ListenAddr: "127.0.0.1:0", Clients: k, Rounds: rounds,
		Seed: seed, Timeout: 5 * time.Second, Tolerant: true,
		CrashAfterRound: crashRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ps0.Addr(), ps1.Addr()}

	var wg sync.WaitGroup
	errCh := make(chan error, k+3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ps0.Serve(); err != nil {
			errCh <- err
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ps1.Serve(); !errors.Is(err, ErrCrashed) {
			errCh <- err
			return
		}
		// Restart on the same address, rejoining at the round the
		// clients send after their degraded round.
		restarted, err := NewPS(PSConfig{
			ID: 1, ListenAddr: addrs[1], Clients: k, Rounds: rounds,
			StartRound: crashRounds + 1,
			Seed:       seed, Timeout: 5 * time.Second, Tolerant: true,
		})
		if err != nil {
			errCh <- err
			return
		}
		if err := restarted.Serve(); err != nil {
			errCh <- err
		}
	}()

	clientStats := make([][]ClientRoundStats, k)
	for id, l := range learners {
		wg.Add(1)
		go func(id int, l core.Learner) {
			defer wg.Done()
			st, err := RunClient(ClientConfig{
				ID: id, Learner: l, Servers: addrs,
				Rounds: rounds, LocalSteps: 2,
				Filter: aggregate.Mean{}, Schedule: nn.ConstantLR(0.3),
				Seed: seed, Timeout: 2 * time.Second,
				MinModels: 1, Redial: true,
				DialAttempts: 5, DialBackoff: 50 * time.Millisecond,
			})
			if err != nil {
				errCh <- err
				return
			}
			clientStats[id] = st
		}(id, l)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("crash-restart run failed: %v", err)
	}

	for id, st := range clientStats {
		if len(st) != rounds {
			t.Fatalf("client %d completed %d rounds, want %d", id, len(st), rounds)
		}
		for _, rs := range st {
			degradedRound := rs.Round == crashRounds
			if degradedRound != rs.Degraded {
				t.Fatalf("client %d round %d: Degraded = %v, want %v (stats %+v)",
					id, rs.Round, rs.Degraded, degradedRound, rs)
			}
		}
	}
	p0 := learners[0].Params()
	for i := 1; i < k; i++ {
		pi := learners[i].Params()
		for j := range p0 {
			if p0[j] != pi[j] {
				t.Fatalf("clients diverged after crash-restart (param %d)", j)
			}
		}
	}

}

// TestChaosCodecUploadFaults puts codec frames on faulted uplinks: a
// corrupted or truncated v2 payload must degrade exactly like a dropped
// dense frame — counted missed, connection kept — and the seeded rerun
// must reproduce the final model bit for bit.
func TestChaosCodecUploadFaults(t *testing.T) {
	// Same seeds as the dense TestChaosUploadFaultScenarios: those fault
	// schedules are known to keep every miss attributable to an injected
	// fault (not to barrier-deadline jitter) even under -race, so the
	// rerun assertion stays meaningful with codec frames on the wire.
	base := chaosOpts{
		k: 4, p: 2, rounds: 5, seed: 101,
		filter:        aggregate.TrimmedMean{Beta: 0.2},
		psTolerant:    true,
		psTimeout:     2 * time.Second,
		clientTimeout: 8 * time.Second,
		upCodec:       mustSpec(t, "q8"),
		downCodec:     mustSpec(t, "topk:0.5"),
	}
	scenarios := []struct {
		name   string
		faults transport.FaultConfig
	}{
		{"corrupt", transport.FaultConfig{Seed: 7, Corrupt: 0.25}},
		{"truncate", transport.FaultConfig{Seed: 7, Truncate: 0.2}},
		{"mixed", transport.FaultConfig{Seed: 7, Drop: 0.1, Corrupt: 0.1, Duplicate: 0.1}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			o := base
			o.clientFaults = sc.faults

			params, stats, clientStats := runChaos(t, o)
			for _, st := range clientStats {
				if len(st) != o.rounds {
					t.Fatalf("client completed %d rounds, want %d", len(st), o.rounds)
				}
			}
			// Downlink is clean, so every client ends on the same model.
			for i := 1; i < o.k; i++ {
				assertSameParams(t, [][]float64{params[0]}, [][]float64{params[i]}, "client agreement")
			}
			missed := 0
			for _, st := range stats {
				missed += st.UploadsMissed
				if st.RoundsServed != o.rounds {
					t.Fatalf("PS served %d rounds, want %d", st.RoundsServed, o.rounds)
				}
				if st.ClientsLost != 0 {
					t.Fatalf("PS condemned %d connections for recoverable codec-frame faults", st.ClientsLost)
				}
			}
			if missed == 0 {
				t.Fatal("no uploads missed — fault schedule never hit a codec frame")
			}

			again, _, _ := runChaos(t, o)
			assertSameParams(t, params, again, "seeded rerun")
		})
	}
}

// TestChaosCodecDownlinkCorrupt corrupts encoded downlink frames: a
// client that cannot decode a global model must degrade that round to
// the survivors (like a drop) without condemning the healthy connection
// or stalling the federation. No seeded-rerun assertion here: a lost
// downlink frame stalls its client for the full recv window (the PS
// only broadcasts again next round), which delays the next broadcast
// for every peer by the same amount — whether their reads then beat
// their own deadlines is a property of scheduler load, not of the
// fault schedule. The upload-direction scenarios pin codec-chaos
// determinism; this one pins the degradation semantics.
func TestChaosCodecDownlinkCorrupt(t *testing.T) {
	// Mean instead of TrimmedMean: a round can degrade all the way to
	// one surviving model, which no nonzero trim could absorb.
	o := chaosOpts{
		k: 3, p: 3, rounds: 5, seed: 107,
		filter:        aggregate.Mean{},
		minModels:     1,
		psTolerant:    true,
		psFaults:      transport.FaultConfig{Seed: 13, Corrupt: 0.2},
		psTimeout:     2 * time.Second,
		clientTimeout: 8 * time.Second,
		upCodec:       mustSpec(t, "q8"),
		downCodec:     mustSpec(t, "q8"),
	}
	_, stats, clientStats := runChaos(t, o)
	degraded := 0
	for id, st := range clientStats {
		if len(st) != o.rounds {
			t.Fatalf("client %d completed %d rounds, want %d", id, len(st), o.rounds)
		}
		for _, rs := range st {
			if rs.Degraded {
				degraded++
				if rs.ModelsReceived >= o.p || rs.ModelsReceived < o.minModels {
					t.Fatalf("client %d round %d: degraded to %d models", id, rs.Round, rs.ModelsReceived)
				}
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no degraded rounds — downlink fault schedule never fired")
	}
	for _, st := range stats {
		if st.RoundsServed != o.rounds {
			t.Fatalf("PS served %d rounds, want %d", st.RoundsServed, o.rounds)
		}
		if st.ClientsLost != 0 {
			t.Fatalf("PS condemned %d connections for corrupt downlink frames", st.ClientsLost)
		}
	}
}
