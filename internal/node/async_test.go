package node

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/compress"
	"fedms/internal/core"
	"fedms/internal/nn"
	"fedms/internal/sched"
)

// asyncChaosOpts is the clean windowed-lifecycle scenario: the real
// window stays generous (3s — no CI deadline pressure) while the
// virtual latency scale is four windows, so seeded arrival delays span
// 0-3 rounds and a staleness bound of 2 exercises every admission
// outcome over live sockets.
func asyncChaosOpts(seed uint64) chaosOpts {
	return chaosOpts{
		k: 8, p: 3, rounds: 6, seed: seed,
		filter:        aggregate.TrimmedMean{Beta: 0.2},
		minModels:     2,
		psTolerant:    true,
		async:         true,
		window:        3 * time.Second,
		staleness:     2,
		latencyScale:  12 * time.Second,
		psTimeout:     10 * time.Second,
		clientTimeout: 10 * time.Second,
	}
}

// TestAsyncDeterminismChaos is the distributed half of the async
// reproducibility contract (its own named verify stage): a live
// federation on real sockets, with stale-tagged backlog traffic and
// down-weighted admission, run twice from the same seed must produce
// identical PS stats, identical client stats and bit-identical final
// models — the wall clock never leaks into the computation as long as
// every marker lands inside the window.
func TestAsyncDeterminismChaos(t *testing.T) {
	for _, tc := range []struct {
		name  string
		codec string
	}{
		{"dense", ""},
		{"topk", "topk:0.5"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := asyncChaosOpts(301)
			if tc.codec != "" {
				spec, err := compress.ParseSpec(tc.codec)
				if err != nil {
					t.Fatal(err)
				}
				o.upCodec = spec
			}
			params, psStats, clientStats := runChaos(t, o)
			again, psAgain, clientAgain := runChaos(t, o)

			assertSameParams(t, params, again, "async seeded rerun")
			if !reflect.DeepEqual(psStats, psAgain) {
				t.Fatalf("PS stats diverged across identical seeded runs:\n%+v\n%+v", psStats, psAgain)
			}
			if !reflect.DeepEqual(clientStats, clientAgain) {
				t.Fatalf("client stats diverged across identical seeded runs")
			}

			var fresh, stale, dropped int
			for _, st := range psStats {
				fresh += st.UploadsReceived - st.UploadsStale
				stale += st.UploadsStale
				dropped += st.UploadsDropped
				if st.RoundsServed != o.rounds {
					t.Fatalf("PS served %d rounds, want %d", st.RoundsServed, o.rounds)
				}
				if st.WindowExpired != 0 {
					t.Fatalf("clean run hit the window deadline %d times", st.WindowExpired)
				}
			}
			if fresh == 0 || stale == 0 || dropped == 0 {
				t.Fatalf("admission outcomes not all exercised: fresh=%d stale=%d dropped=%d",
					fresh, stale, dropped)
			}
			var staleSent, clientDropped, backlog int
			for _, st := range clientStats {
				for _, rs := range st {
					staleSent += rs.StaleUploads
					clientDropped += rs.DroppedUploads
					backlog += rs.BacklogDepth
				}
			}
			if staleSent != stale+dropped {
				t.Fatalf("clients sent %d stale uploads, PSs accounted %d stale + %d dropped",
					staleSent, stale, dropped)
			}
			if clientDropped != 0 {
				t.Fatalf("clean run abandoned %d backlog uploads", clientDropped)
			}
			if backlog == 0 {
				t.Fatal("backlog never held a delayed upload; virtual straggling untested")
			}
		})
	}
}

// slowLearner injects a real wall-clock training delay, turning one
// client into a genuine straggler (not a virtual one).
type slowLearner struct {
	core.Learner
	sleep time.Duration
}

func (s slowLearner) LocalTrain(steps, globalStep int, sc nn.Schedule) float64 {
	time.Sleep(s.sleep)
	return s.Learner.LocalTrain(steps, globalStep, sc)
}

// runStraggler runs k clients against p tolerant PSs with client k-1
// sleeping `sleep` before every local training stage, and returns how
// long the PS tier took to serve all rounds plus the final PS stats.
// In async mode the straggler may outlive the servers; its error (if
// any) is part of the scenario, not a failure.
func runStraggler(t *testing.T, async bool, sleep time.Duration) (time.Duration, []PSStats) {
	t.Helper()
	const k, p, rounds, seed = 3, 2, 4, 310
	learners := makeLearners(t, k, seed)

	servers := make([]*PS, p)
	addrs := make([]string, p)
	for i := 0; i < p; i++ {
		cfg := PSConfig{
			ID: i, ListenAddr: "127.0.0.1:0", Clients: k, Rounds: rounds,
			Seed: seed, Timeout: 10 * time.Second, Tolerant: true,
		}
		if async {
			cfg.Async = true
			cfg.Window = 200 * time.Millisecond
			cfg.Staleness = 8
		}
		ps, err := NewPS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = ps
		addrs[i] = ps.Addr()
	}

	start := time.Now()
	var psWG sync.WaitGroup
	errCh := make(chan error, p+k)
	for _, ps := range servers {
		psWG.Add(1)
		go func(ps *PS) {
			defer psWG.Done()
			if err := ps.Serve(); err != nil {
				errCh <- err
			}
		}(ps)
	}

	var clientWG sync.WaitGroup
	for id := range learners {
		clientWG.Add(1)
		go func(id int) {
			defer clientWG.Done()
			l := learners[id]
			straggler := id == k-1
			if straggler {
				l = slowLearner{Learner: l, sleep: sleep}
			}
			cfg := ClientConfig{
				ID: id, Learner: l, Servers: addrs,
				Rounds: rounds, LocalSteps: 2,
				Filter: aggregate.TrimmedMean{Beta: 0.2}, Schedule: nn.ConstantLR(0.3),
				Seed: seed, Timeout: 10 * time.Second, MinModels: 1,
			}
			if async {
				cfg.Async = true
				cfg.Window = 200 * time.Millisecond
				cfg.Staleness = 8
				cfg.LatencyScale = time.Millisecond // no virtual delays: the straggling is real
			}
			_, err := RunClient(cfg)
			// An async straggler can outlive the servers; only a fast
			// client failing breaks the scenario.
			if err != nil && !(async && straggler) {
				errCh <- err
			}
		}(id)
	}

	psWG.Wait()
	psDur := time.Since(start)
	clientWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("straggler run failed: %v", err)
	}

	stats := make([]PSStats, p)
	for i, ps := range servers {
		stats[i] = ps.Stats()
	}
	return psDur, stats
}

// TestChaosAsyncStragglerWindow is the scheduling acceptance criterion
// on live sockets: with one client sleeping a full second before every
// training stage, the sync barrier makes every PS round as slow as the
// slowest client (≥ rounds × sleep in total), while the async window
// closes rounds on the window cadence — the PS tier finishes in well
// under half the sync time and surfaces the straggler as window
// expiries, not protocol faults.
func TestChaosAsyncStragglerWindow(t *testing.T) {
	const sleep = time.Second
	const rounds = 4

	syncDur, _ := runStraggler(t, false, sleep)
	asyncDur, asyncStats := runStraggler(t, true, sleep)

	if syncDur < time.Duration(rounds)*sleep {
		t.Fatalf("sync PS tier finished in %v — the barrier should serialize %d sleeps of %v",
			syncDur, rounds, sleep)
	}
	if asyncDur > syncDur/2 {
		t.Fatalf("async PS tier took %v, not meaningfully under the sync %v — round time is not window-bounded",
			asyncDur, syncDur)
	}
	expired := 0
	for _, st := range asyncStats {
		expired += st.WindowExpired
		if st.RoundsServed != rounds {
			t.Fatalf("async PS served %d rounds, want %d", st.RoundsServed, rounds)
		}
	}
	if expired == 0 {
		t.Fatal("async run never expired a window; the straggler was not actually late")
	}
}

// TestChaosAsyncRestartResumesSpill drives the crash/restart path
// twice: a tolerant async PS with a checkpoint crashes, restarts at the
// checkpointed round horizon one round behind its clients, absorbs
// their future-round uploads through the spill buffer, flushes that
// spill into its next checkpoint, crashes again mid-lag, and the second
// restart replays the recovered segment. The federation must complete
// with every client on the same final model.
func TestChaosAsyncRestartResumesSpill(t *testing.T) {
	const k, p, rounds, seed = 3, 2, 6, 312
	const crashRounds = 2
	learners := makeLearners(t, k, seed)
	ckpt := t.TempDir() + "/ps1.ckpt"

	psCfg := func(listen string) PSConfig {
		return PSConfig{
			ID: 1, ListenAddr: listen, Clients: k, Rounds: rounds,
			Seed: seed, Timeout: 5 * time.Second, Tolerant: true,
			Async: true, Window: 2 * time.Second, Staleness: 3,
			CheckpointPath: ckpt,
		}
	}

	ps0, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: k, Rounds: rounds,
		Seed: seed, Timeout: 5 * time.Second, Tolerant: true,
		Async: true, Window: 2 * time.Second, Staleness: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := psCfg("127.0.0.1:0")
	first.CrashAfterRound = crashRounds
	ps1, err := NewPS(first)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ps0.Addr(), ps1.Addr()}

	var wg sync.WaitGroup
	errCh := make(chan error, k+4)
	var restart1, restart2 PSStats
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ps0.Serve(); err != nil {
			errCh <- err
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ps1.Serve(); !errors.Is(err, ErrCrashed) {
			errCh <- err
			return
		}
		// First restart: resume from the checkpoint (round horizon =
		// crashRounds), lag one round behind the clients — their
		// future-round uploads land in the spill — then crash again with
		// the spill flushed into the checkpoint.
		c1 := psCfg(addrs[1])
		c1.CrashAfterRound = 1
		r1, err := NewPS(c1)
		if err != nil {
			errCh <- err
			return
		}
		if err := r1.Serve(); !errors.Is(err, ErrCrashed) {
			errCh <- err
			return
		}
		restart1 = r1.Stats()
		// Second restart: recover the flushed spill segment and replay
		// it through to completion.
		r2, err := NewPS(psCfg(addrs[1]))
		if err != nil {
			errCh <- err
			return
		}
		if err := r2.Serve(); err != nil {
			errCh <- err
			return
		}
		restart2 = r2.Stats()
	}()

	for id, l := range learners {
		wg.Add(1)
		go func(id int, l core.Learner) {
			defer wg.Done()
			_, err := RunClient(ClientConfig{
				ID: id, Learner: l, Servers: addrs,
				Rounds: rounds, LocalSteps: 2, FullUpload: true,
				Filter: aggregate.TrimmedMean{Beta: 0.25}, Schedule: nn.ConstantLR(0.3),
				Seed: seed, Timeout: time.Second,
				MinModels: 1, Redial: true,
				DialAttempts: 8, DialBackoff: 50 * time.Millisecond,
				Async: true, Window: 2 * time.Second, Staleness: 3,
				LatencyScale: time.Millisecond,
			})
			if err != nil {
				errCh <- err
			}
		}(id, l)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("async crash-restart run failed: %v", err)
	}

	if restart1.UploadsDeferred == 0 {
		t.Fatal("lagging restart never deferred a future-round upload; spill path untested")
	}
	if restart1.SpillPeakBytes == 0 {
		t.Fatal("deferred uploads never reached the spill segment on disk")
	}
	if restart2.RoundsServed == 0 || restart2.UploadsReceived == 0 {
		t.Fatalf("second restart served nothing: %+v", restart2)
	}
	served := crashRounds + 1 + restart2.RoundsServed
	if served != rounds {
		t.Fatalf("PS 1 lifetimes served %d rounds in total, want %d", served, rounds)
	}

	p0 := learners[0].Params()
	for i := 1; i < k; i++ {
		pi := learners[i].Params()
		for j := range p0 {
			if math.Float64bits(p0[j]) != math.Float64bits(pi[j]) {
				t.Fatalf("clients diverged after async crash-restart (client %d param %d)", i, j)
			}
		}
	}
}

// TestPSAsyncConfigValidation pins NewPS's fail-fast contract around
// the async knobs, mirroring the engine's TestAsyncConfigValidation.
func TestPSAsyncConfigValidation(t *testing.T) {
	base := func() PSConfig {
		return PSConfig{
			ID: 0, ListenAddr: "127.0.0.1:0", Clients: 2, Rounds: 3, Seed: 1,
			Tolerant: true,
			Async:    true, Window: time.Second, Staleness: 2,
		}
	}
	tests := []struct {
		name   string
		mutate func(*PSConfig)
	}{
		{"window without async", func(c *PSConfig) { c.Async = false; c.Staleness = 0 }},
		{"staleness without async", func(c *PSConfig) { c.Async = false; c.Window = 0 }},
		{"spill knobs without async", func(c *PSConfig) { c.Async = false; c.Window = 0; c.Staleness = 0; c.SpillMem = 4096 }},
		{"checkpoint without async", func(c *PSConfig) { c.Async = false; c.Window = 0; c.Staleness = 0; c.CheckpointPath = "x.ckpt" }},
		{"negative window", func(c *PSConfig) { c.Window = -time.Second }},
		{"negative staleness", func(c *PSConfig) { c.Staleness = -1 }},
		{"non-weighted server rule", func(c *PSConfig) { c.ServerRule = aggregate.NoFuse{Rule: aggregate.Mean{}} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base()
			tt.mutate(&cfg)
			if ps, err := NewPS(cfg); err == nil {
				_ = ps.Close()
				t.Fatal("expected config error")
			}
		})
	}
	// The valid async config binds, and the window defaults when unset.
	cfg := base()
	cfg.Window = 0
	ps, err := NewPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ps.cfg.Window != sched.DefaultLatencyScale/4 {
		t.Fatalf("default Window = %v", ps.cfg.Window)
	}
	_ = ps.Close()
}

// TestClientAsyncConfigValidation is the client-side counterpart.
func TestClientAsyncConfigValidation(t *testing.T) {
	base := func() ClientConfig {
		return ClientConfig{
			ID: 0, Learner: makeLearners(t, 1, 9)[0], Servers: []string{"127.0.0.1:1"},
			Rounds: 1, Filter: aggregate.Mean{}, Schedule: nn.ConstantLR(0.1),
			Async: true, Window: time.Second, Staleness: 2,
		}
	}
	tests := []struct {
		name   string
		mutate func(*ClientConfig)
	}{
		{"window without async", func(c *ClientConfig) { c.Async = false; c.Staleness = 0 }},
		{"staleness without async", func(c *ClientConfig) { c.Async = false; c.Window = 0 }},
		{"latency scale without async", func(c *ClientConfig) { c.Async = false; c.Window = 0; c.Staleness = 0; c.LatencyScale = time.Second }},
		{"negative window", func(c *ClientConfig) { c.Window = -time.Second }},
		{"negative staleness", func(c *ClientConfig) { c.Staleness = -1 }},
		{"negative latency scale", func(c *ClientConfig) { c.LatencyScale = -time.Second }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base()
			tt.mutate(&cfg)
			if _, err := RunClient(cfg); err == nil {
				t.Fatal("expected config error")
			}
		})
	}
}
