package node

import (
	"strconv"

	"fedms/internal/obs"
)

// psMetrics mirrors PSStats into a live obs.Registry, adding the
// barrier-wait distribution that lifetime counters cannot express.
// The constructor always returns a usable value: with a nil registry
// every collector is nil and every update is a no-op branch, so call
// sites never guard.
type psMetrics struct {
	rounds         *obs.Counter
	uploadsRecv    *obs.Counter
	uploadsMissed  *obs.Counter
	clientsLost    *obs.Counter
	badAccepts     *obs.Counter
	prefilterDrops *obs.Counter
	tokenRejects   *obs.Counter
	rateLimited    *obs.Counter
	handshakePool  *obs.Gauge
	framesSkipped  *obs.Counter
	sendsFailed    *obs.Counter
	bytesIn        *obs.Counter
	bytesOut       *obs.Counter
	floatsIn       *obs.Counter
	floatsOut      *obs.Counter
	aggFused       *obs.Counter
	aggFallback    *obs.Counter
	aggSharded     *obs.Counter
	aggDecodeBytes *obs.Counter
	oracleEvals    *obs.Counter
	shardPeakBytes *obs.Gauge
	barrierWait    *obs.Histogram
	// Async lifecycle collectors (untouched in sync mode): window-close
	// counters split by admission outcome, the window-expiry count, the
	// per-admitted-upload staleness distribution, and the deferred-
	// upload spill buffer's depth and byte footprint.
	winFresh      *obs.Counter
	winStale      *obs.Counter
	winDropped    *obs.Counter
	winDeferred   *obs.Counter
	windowExpired *obs.Counter
	staleHist     *obs.Histogram
	spillDepth    *obs.Gauge
	spillBytes    *obs.Gauge
}

// newPSMetrics takes the aggregation rule's name so the decode-bytes
// counter carries a per-rule label: aggregate decode volume is a
// property of the (server, rule) pair, and dashboards comparing fused
// rules against densify-first fallbacks need the split.
func newPSMetrics(reg *obs.Registry, id int, rule string) *psMetrics {
	l := `{ps="` + strconv.Itoa(id) + `"}`
	c := func(name string) *obs.Counter { return reg.Counter("fedms_ps_" + name + "_total" + l) }
	return &psMetrics{
		rounds:         c("rounds_served"),
		uploadsRecv:    c("uploads_received"),
		uploadsMissed:  c("uploads_missed"),
		clientsLost:    c("clients_lost"),
		badAccepts:     c("bad_accepts"),
		prefilterDrops: c("prefilter_drops"),
		tokenRejects:   c("token_rejects"),
		rateLimited:    c("rate_limited_conns"),
		handshakePool:  reg.Gauge("fedms_ps_handshake_pool_depth" + l),
		framesSkipped:  c("frames_skipped"),
		sendsFailed:    c("sends_failed"),
		bytesIn:        c("bytes_in"),
		bytesOut:       c("bytes_out"),
		floatsIn:       c("floats_in"),
		floatsOut:      c("floats_out"),
		aggFused:       c("agg_fused"),
		aggFallback:    c("agg_fallback"),
		aggSharded:     c("agg_sharded"),
		aggDecodeBytes: reg.Counter(
			`fedms_ps_agg_decode_bytes_total{ps="` + strconv.Itoa(id) + `",rule="` + rule + `"}`),
		oracleEvals: reg.Counter(
			`fedms_ps_oracle_evals_total{ps="` + strconv.Itoa(id) + `",rule="` + rule + `"}`),
		shardPeakBytes: reg.Gauge("fedms_ps_shard_peak_bytes" + l),
		barrierWait:    reg.Histogram("fedms_ps_barrier_wait_seconds"+l, nil),
		winFresh: reg.Counter(
			`fedms_ps_window_uploads_total{ps="` + strconv.Itoa(id) + `",result="fresh"}`),
		winStale: reg.Counter(
			`fedms_ps_window_uploads_total{ps="` + strconv.Itoa(id) + `",result="stale"}`),
		winDropped: reg.Counter(
			`fedms_ps_window_uploads_total{ps="` + strconv.Itoa(id) + `",result="dropped"}`),
		winDeferred: reg.Counter(
			`fedms_ps_window_uploads_total{ps="` + strconv.Itoa(id) + `",result="deferred"}`),
		windowExpired: c("window_expired"),
		staleHist:     reg.Histogram("fedms_ps_upload_staleness_rounds"+l, []float64{0, 1, 2, 3, 5, 8, 13}),
		spillDepth:    reg.Gauge("fedms_ps_spill_depth" + l),
		spillBytes:    reg.Gauge("fedms_ps_spill_bytes" + l),
	}
}

// clientMetrics is the client-side counterpart of psMetrics.
type clientMetrics struct {
	rounds            *obs.Counter
	degraded          *obs.Counter
	modelsRecv        *obs.Counter
	modelsMissed      *obs.Counter
	redialAttempts    *obs.Counter
	redialsOK         *obs.Counter
	uploadBytes       *obs.Counter
	downloadBytes     *obs.Counter
	framesSkipped     *obs.Counter
	filterFused       *obs.Counter
	filterFallback    *obs.Counter
	filterDecodeBytes *obs.Counter
	oracleEvals       *obs.Counter
	recvWait          *obs.Histogram
	// Async lifecycle collectors (untouched in sync mode): stale-tagged
	// backlog sends, due backlog models abandoned because every target
	// server died, and the local backlog depth after each round's sends.
	staleSent      *obs.Counter
	uploadsDropped *obs.Counter
	backlogDepth   *obs.Gauge
}

// newClientMetrics takes the client filter rule's name for the same
// reason newPSMetrics takes the server rule's: the decode-bytes
// counter is labelled per rule.
func newClientMetrics(reg *obs.Registry, id int, rule string) *clientMetrics {
	l := `{client="` + strconv.Itoa(id) + `"}`
	c := func(name string) *obs.Counter { return reg.Counter("fedms_client_" + name + "_total" + l) }
	return &clientMetrics{
		rounds:         c("rounds"),
		degraded:       c("degraded_rounds"),
		modelsRecv:     c("models_received"),
		modelsMissed:   c("models_missed"),
		redialAttempts: c("redial_attempts"),
		redialsOK:      c("redials_ok"),
		uploadBytes:    c("upload_bytes"),
		downloadBytes:  c("download_bytes"),
		framesSkipped:  c("frames_skipped"),
		filterFused:    c("filter_fused"),
		filterFallback: c("filter_fallback"),
		filterDecodeBytes: reg.Counter(
			`fedms_client_filter_decode_bytes_total{client="` + strconv.Itoa(id) + `",rule="` + rule + `"}`),
		oracleEvals: reg.Counter(
			`fedms_client_oracle_evals_total{client="` + strconv.Itoa(id) + `",rule="` + rule + `"}`),
		recvWait:       reg.Histogram("fedms_client_recv_wait_seconds"+l, nil),
		staleSent:      c("stale_uploads"),
		uploadsDropped: c("uploads_dropped"),
		backlogDepth:   reg.Gauge("fedms_client_backlog_depth" + l),
	}
}
