package node

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"fedms/internal/transport"
)

// slowClient speaks the minimal protocol with generous deadlines so
// the ingest tests measure the server's accept latency, not a client
// timeout: hello, one round-0 upload, one global-model receive.
func slowClient(addr string, id int, vec []float64, errCh chan<- error) {
	conn, err := transport.Dial(addr, 10*time.Second)
	if err != nil {
		errCh <- err
		return
	}
	defer conn.Close()
	conn.Timeout = 10 * time.Second
	if err := conn.Send(&transport.Message{
		Type: transport.TypeHello, Sender: uint32(id), Flag: uint32(id), Vec: vec,
	}); err != nil {
		errCh <- err
		return
	}
	if err := conn.Send(&transport.Message{
		Type: transport.TypeUpload, Round: 0, Sender: uint32(id), Flag: 1, Vec: vec,
	}); err != nil {
		errCh <- err
		return
	}
	_, err = conn.Recv()
	errCh <- err
}

// TestPSAcceptSilentConnNoHeadOfLine pins the accept-phase
// head-of-line fix: connected-but-silent sockets (slow-loris) must not
// delay honest clients behind them. The pre-fix accept loop called
// conn.Recv() inline, so each silent connection stalled every
// subsequent accept for the full cfg.Timeout — three of them cost
// 3×Timeout before the first honest hello was even read. With the
// concurrent accept stage the honest clients are admitted immediately
// and the round completes in ~hello-deadline regardless of how many
// silent sockets are parked on the listener.
func TestPSAcceptSilentConnNoHeadOfLine(t *testing.T) {
	const silent = 3
	vec := []float64{1, 2, 3}
	timeout := 2 * time.Second
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: 2, Rounds: 1,
		Tolerant: true, Timeout: timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ps.Serve() }()

	start := time.Now()
	// Park silent connections on the listener first, so a serial accept
	// loop would have to burn its receive timeout on each of them before
	// reaching the honest hellos.
	silents := make([]net.Conn, 0, silent)
	defer func() {
		for _, c := range silents {
			_ = c.Close()
		}
	}()
	for i := 0; i < silent; i++ {
		c, err := net.Dial("tcp", ps.Addr())
		if err != nil {
			t.Fatal(err)
		}
		silents = append(silents, c)
	}
	// Give the kernel a beat to order the backlog, then the real clients.
	time.Sleep(50 * time.Millisecond)
	errCh := make(chan error, 2)
	for id := 0; id < 2; id++ {
		go slowClient(ps.Addr(), id, vec, errCh)
	}
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	elapsed := time.Since(start)
	// Serial accept: >= silent*Timeout = 6s before the honest hellos are
	// read. Concurrent accept: well under one Timeout.
	if limit := 2 * timeout; elapsed >= limit {
		t.Fatalf("accept phase took %v with %d silent connections parked; head-of-line stall (limit %v)", elapsed, silent, limit)
	}
	st := ps.Stats()
	if st.RoundsServed != 1 || st.UploadsReceived != 2 {
		t.Fatalf("round incomplete behind silent connections: %+v", st)
	}
}

// TestPSAcceptRotatingSourceJunkNeverFatal pins the maxBadAccepts
// removal: unlimited junk connections — the rotating-source flood a
// lifetime counter mistakes for one persistent abuser — must never turn
// a healthy tolerant PS fatal. The pre-fix code gave up after 32.
func TestPSAcceptRotatingSourceJunkNeverFatal(t *testing.T) {
	vec := []float64{4, 5, 6}
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: 2, Rounds: 1,
		Tolerant: true, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ps.Serve() }()

	// Twice the old lifetime budget, each from a fresh ephemeral port
	// (the rotating-source shape a per-source limiter must not punish).
	var junk atomic.Int64
	for i := 0; i < 64; i++ {
		raw, err := net.Dial("tcp", ps.Addr())
		if err != nil {
			t.Fatal(err)
		}
		_, _ = raw.Write([]byte("junk junk junk"))
		_ = raw.Close()
		junk.Add(1)
	}

	errCh := make(chan error, 2)
	for id := 0; id < 2; id++ {
		go slowClient(ps.Addr(), id, vec, errCh)
	}
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve turned fatal under %d junk connections: %v", junk.Load(), err)
	}
	st := ps.Stats()
	if st.RoundsServed != 1 || st.UploadsReceived != 2 {
		t.Fatalf("round incomplete after junk flood: %+v", st)
	}
	if st.BadAccepts < 1 {
		t.Fatalf("junk flood left no BadAccepts trace: %+v", st)
	}
}

// TestSourceLimiterBuckets drives the token-bucket math with an
// injected clock: rotating sources are never throttled (each gets its
// own fresh bucket), a single source is throttled after its burst and
// recovers as tokens refill.
func TestSourceLimiterBuckets(t *testing.T) {
	l := newSourceLimiter(1, 2) // 1 conn/sec, burst 2
	now := time.Unix(1000, 0)

	for i := 0; i < 100; i++ {
		if !l.allow(fmt.Sprintf("10.0.%d.%d", i/256, i%256), now) {
			t.Fatalf("rotating source %d throttled", i)
		}
	}
	if !l.allow("attacker", now) || !l.allow("attacker", now) {
		t.Fatal("burst not honoured")
	}
	if l.allow("attacker", now) {
		t.Fatal("third instant connection allowed past burst 2")
	}
	if l.allow("attacker", now.Add(500*time.Millisecond)) {
		t.Fatal("half a token is not a token")
	}
	if !l.allow("attacker", now.Add(1500*time.Millisecond)) {
		t.Fatal("refilled token not granted")
	}
	// The throttled source never starves others, even at the same instant.
	if !l.allow("bystander", now) {
		t.Fatal("throttling one source starved another")
	}
}

func TestSourceLimiterPruneBound(t *testing.T) {
	l := newSourceLimiter(1000, 1)
	now := time.Unix(2000, 0)
	for i := 0; i < 3*sourceLimiterMaxBuckets; i++ {
		// Advance time so earlier buckets refill and become evictable.
		l.allow(fmt.Sprintf("s%d", i), now.Add(time.Duration(i)*time.Millisecond))
	}
	if n := len(l.buckets); n > sourceLimiterMaxBuckets+1 {
		t.Fatalf("bucket table grew unbounded: %d entries", n)
	}
}

// TestPSAcceptRateLimitPerSource is the integration half: a single
// abusive source hammering the listener gets throttled (its conns shed
// at accept, counted in RateLimited, never fatal) while honest clients
// dialing from different local addresses are admitted and the round
// completes. Linux loopback accepts any 127.0.0.0/8 local address.
func TestPSAcceptRateLimitPerSource(t *testing.T) {
	vec := []float64{1, 2, 3}
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: 2, Rounds: 1,
		Tolerant: true, Timeout: 5 * time.Second,
		AcceptRate: 1, AcceptBurst: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ps.Serve() }()

	// 8 instant junk connections from one source (127.0.0.50): burst 2
	// pass to the handshake stage, the rest are shed.
	abuser := &net.Dialer{LocalAddr: &net.TCPAddr{IP: net.ParseIP("127.0.0.50")}}
	for i := 0; i < 8; i++ {
		raw, err := abuser.Dial("tcp", ps.Addr())
		if err != nil {
			t.Fatal(err)
		}
		_, _ = raw.Write([]byte("junk"))
		_ = raw.Close()
	}

	errCh := make(chan error, 2)
	for id := 0; id < 2; id++ {
		id := id
		go func() {
			d := &net.Dialer{LocalAddr: &net.TCPAddr{IP: net.ParseIP(fmt.Sprintf("127.0.0.%d", 2+id))}}
			raw, err := d.Dial("tcp", ps.Addr())
			if err != nil {
				errCh <- err
				return
			}
			conn := transport.NewConn(raw)
			defer conn.Close()
			conn.Timeout = 5 * time.Second
			if err := conn.Send(&transport.Message{
				Type: transport.TypeHello, Sender: uint32(id), Flag: uint32(id), Vec: vec,
			}); err != nil {
				errCh <- err
				return
			}
			if err := conn.Send(&transport.Message{
				Type: transport.TypeUpload, Round: 0, Sender: uint32(id), Flag: 1, Vec: vec,
			}); err != nil {
				errCh <- err
				return
			}
			_, err = conn.Recv()
			errCh <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	st := ps.Stats()
	if st.RoundsServed != 1 || st.UploadsReceived != 2 {
		t.Fatalf("round incomplete under abusive source: %+v", st)
	}
	if st.RateLimited < 4 {
		t.Fatalf("RateLimited = %d, want >= 4 of 8 instant junk conns shed", st.RateLimited)
	}
}

// TestPSRequireTokenAdmission: with RequireToken set, a hello carrying
// the right connect token is admitted, one with a forged token is
// rejected (counted in TokenRejects), and the real client path — which
// mints tokens from the shared key — completes a round end to end.
func TestPSRequireTokenAdmission(t *testing.T) {
	key := []byte("federation-key")
	const seed = 99
	vec := []float64{1, 2, 3}
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: 2, Rounds: 1,
		Tolerant: true, Timeout: 5 * time.Second,
		Key: key, Seed: seed, RequireToken: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ps.Serve() }()

	// Tokenless and forged-token hellos must bounce.
	for _, text := range []string{"", transport.HelloTokenPrefix + "0123456789abcdef0123456789abcdef"} {
		conn, err := transport.Dial(ps.Addr(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		conn.Timeout = 5 * time.Second
		conn.SetKey(key)
		_ = conn.Send(&transport.Message{Type: transport.TypeHello, Flag: 0, Text: text, Vec: vec})
		_ = conn.Close()
	}

	errCh := make(chan error, 2)
	for id := 0; id < 2; id++ {
		id := id
		go func() {
			conn, err := transport.Dial(ps.Addr(), 5*time.Second)
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			conn.Timeout = 5 * time.Second
			conn.SetKey(key)
			info := transport.HelloInfo{Token: transport.ConnectToken(key, seed, id)}
			if err := conn.Send(&transport.Message{
				Type: transport.TypeHello, Sender: uint32(id),
				Flag: uint32(id) | transport.HelloSeedFlag, Text: info.Text(),
			}); err != nil {
				errCh <- err
				return
			}
			if err := conn.Send(&transport.Message{
				Type: transport.TypeHello, Sender: uint32(id), Flag: uint32(id), Vec: vec,
			}); err != nil {
				errCh <- err
				return
			}
			if err := conn.Send(&transport.Message{
				Type: transport.TypeUpload, Round: 0, Sender: uint32(id), Flag: 1, Vec: vec,
			}); err != nil {
				errCh <- err
				return
			}
			_, err = conn.Recv()
			errCh <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	st := ps.Stats()
	if st.TokenRejects != 2 {
		t.Fatalf("TokenRejects = %d, want 2", st.TokenRejects)
	}
	if st.RoundsServed != 1 || st.UploadsReceived != 2 {
		t.Fatalf("round incomplete: %+v", st)
	}
}
