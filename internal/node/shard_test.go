package node

import (
	"sync"
	"testing"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/compress"
	"fedms/internal/core"
	"fedms/internal/nn"
)

// runDistributedOpts is runDistributed with config hooks: psMut and
// clMut edit each node's config after the shared defaults are set, so
// the sharded and participation tiers reuse one runner.
func runDistributedOpts(t *testing.T, learners []core.Learner, p, rounds int,
	filter aggregate.Rule, seed uint64,
	psMut func(*PSConfig), clMut func(*ClientConfig)) ([][]float64, [][]ClientRoundStats) {
	t.Helper()
	k := len(learners)

	servers := make([]*PS, p)
	addrs := make([]string, p)
	for i := 0; i < p; i++ {
		cfg := PSConfig{
			ID:         i,
			ListenAddr: "127.0.0.1:0",
			Clients:    k,
			Rounds:     rounds,
			Seed:       seed,
			Timeout:    5 * time.Second,
		}
		if psMut != nil {
			psMut(&cfg)
		}
		ps, err := NewPS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = ps
		addrs[i] = ps.Addr()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, p+k)
	for _, ps := range servers {
		wg.Add(1)
		go func(ps *PS) {
			defer wg.Done()
			if err := ps.Serve(); err != nil {
				errCh <- err
			}
		}(ps)
	}
	clientStats := make([][]ClientRoundStats, k)
	for id, l := range learners {
		wg.Add(1)
		go func(id int, l core.Learner) {
			defer wg.Done()
			cfg := ClientConfig{
				ID:         id,
				Learner:    l,
				Servers:    addrs,
				Rounds:     rounds,
				LocalSteps: 2,
				Filter:     filter,
				Schedule:   nn.ConstantLR(0.3),
				Seed:       seed,
				Timeout:    5 * time.Second,
			}
			if clMut != nil {
				clMut(&cfg)
			}
			st, err := RunClient(cfg)
			if err != nil {
				errCh <- err
				return
			}
			clientStats[id] = st
		}(id, l)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("distributed run failed: %v", err)
	}

	params := make([][]float64, k)
	for i, l := range learners {
		params[i] = l.Params()
	}
	return params, clientStats
}

// runEngineCfg runs the in-process engine under a caller-shaped config
// and returns the final client params.
func runEngineCfg(t *testing.T, learners []core.Learner, cfg core.Config) [][]float64 {
	t.Helper()
	cfg.EvalEvery = -1
	eng, err := core.NewEngine(cfg, learners)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	params := make([][]float64, len(learners))
	for i, l := range learners {
		params[i] = l.Params()
	}
	return params
}

// TestDistributedShardedMatchesEngine is the distributed leg of the
// sharded differential contract: PSs streaming codec uploads through
// the two-tier shard tree must leave every client bit-identical to the
// unsharded in-process engine AND to the engine running its own sharded
// path — three routes, one trajectory. Full upload with a robust server
// rule gives every PS the full K-row barrier to shard.
func TestDistributedShardedMatchesEngine(t *testing.T) {
	const k, p, rounds, seed = 6, 3, 4, 71
	rule := aggregate.TrimmedMean{Beta: 0.2}
	up, err := compress.ParseSpec("topk:0.25")
	if err != nil {
		t.Fatal(err)
	}

	dist, _ := runDistributedOpts(t, makeLearners(t, k, seed), p, rounds, rule, seed,
		func(c *PSConfig) {
			c.ServerRule = aggregate.TrimmedMean{Beta: 0.2}
			c.Shards = 3
		},
		func(c *ClientConfig) {
			c.FullUpload = true
			codec, err := up.NewCodec(core.ClientCodecSeed(seed, c.ID))
			if err != nil {
				t.Error(err)
				return
			}
			c.Codec = codec
		})

	base := core.Config{
		Clients: k, Servers: p, Rounds: rounds, LocalSteps: 2,
		Upload: core.FullUpload, ServerFilter: aggregate.TrimmedMean{Beta: 0.2},
		Filter: rule, Schedule: nn.ConstantLR(0.3), Seed: seed,
		UploadCodec: up,
	}
	engUnsharded := runEngineCfg(t, makeLearners(t, k, seed), base)
	assertSameParams(t, dist, engUnsharded, "sharded distributed vs unsharded engine")

	base.Shards = 4
	engSharded := runEngineCfg(t, makeLearners(t, k, seed), base)
	assertSameParams(t, engSharded, engUnsharded, "sharded engine vs unsharded engine")
}

// TestDistributedParticipationMatchesEngine pins the partial-
// participation parity contract: distributed clients sampling their
// rounds from core.ActiveClients train bit-identically to the engine
// under the same Participation, and the per-round active sets the
// clients report are exactly the engine's sampled index sets.
func TestDistributedParticipationMatchesEngine(t *testing.T) {
	const k, p, rounds, seed = 6, 3, 5, 73
	const participation = 0.5
	rule := aggregate.TrimmedMean{Beta: 0.2}

	dist, clientStats := runDistributedOpts(t, makeLearners(t, k, seed), p, rounds, rule, seed,
		nil,
		func(c *ClientConfig) {
			c.Clients = k
			c.Participation = participation
		})

	// The active flags each client recorded must reproduce the pure
	// sampled index sets, round for round.
	for round := 0; round < rounds; round++ {
		want := make(map[int]bool, k)
		for _, id := range core.ActiveClients(seed, round, k, participation) {
			want[id] = true
		}
		for id := 0; id < k; id++ {
			if got := clientStats[id][round].Active; got != want[id] {
				t.Fatalf("round %d client %d: Active=%v, engine samples %v", round, id, got, want[id])
			}
			if !want[id] && clientStats[id][round].UploadBytes != 0 {
				t.Fatalf("round %d client %d: inactive client put %d upload bytes on the wire",
					round, id, clientStats[id][round].UploadBytes)
			}
		}
	}

	eng := runEngineCfg(t, makeLearners(t, k, seed), core.Config{
		Clients: k, Servers: p, Rounds: rounds, LocalSteps: 2,
		Participation: participation,
		Filter:        rule, Schedule: nn.ConstantLR(0.3), Seed: seed,
	})
	assertSameParams(t, dist, eng, "participation 0.5")
}

// TestClientRejectsBadParticipation pins the client-side fail-fast
// validation: an out-of-range fraction or a missing population size is
// rejected before any socket is dialed.
func TestClientRejectsBadParticipation(t *testing.T) {
	learners := makeLearners(t, 1, 79)
	base := ClientConfig{
		ID: 0, Learner: learners[0], Servers: []string{"127.0.0.1:1"},
		Rounds: 1, Filter: aggregate.Mean{}, Schedule: nn.ConstantLR(0.1),
	}

	bad := base
	bad.Participation = 1.5
	if _, err := RunClient(bad); err == nil {
		t.Fatal("expected participation range error")
	}
	bad = base
	bad.Participation = 0.5 // Clients unset: population unknown
	if _, err := RunClient(bad); err == nil {
		t.Fatal("expected missing-Clients error")
	}
}
