package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/compress"
	"fedms/internal/core"
	"fedms/internal/nn"
	"fedms/internal/randx"
)

// runDistributedCodec is runDistributed with the codec layer enabled:
// each client compresses uploads with a codec seeded by
// core.ClientCodecSeed, and each PS optionally compresses its downlink.
// It also returns the stats both sides recorded so tests can check the
// byte accounting against the engine's.
func runDistributedCodec(t *testing.T, learners []core.Learner, p, rounds int,
	filter aggregate.Rule, seed uint64, up, down compress.Spec) ([][]float64, []PSStats, [][]ClientRoundStats) {
	t.Helper()
	k := len(learners)

	servers := make([]*PS, p)
	addrs := make([]string, p)
	for i := 0; i < p; i++ {
		var dc compress.Codec
		if !down.IsDense() {
			var err error
			dc, err = down.NewCodec(randx.Derive(seed, fmt.Sprintf("downlink/ps%d", i)))
			if err != nil {
				t.Fatal(err)
			}
		}
		ps, err := NewPS(PSConfig{
			ID:            i,
			ListenAddr:    "127.0.0.1:0",
			Clients:       k,
			Rounds:        rounds,
			Seed:          seed,
			Timeout:       5 * time.Second,
			DownlinkCodec: dc,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = ps
		addrs[i] = ps.Addr()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, p+k)
	for _, ps := range servers {
		wg.Add(1)
		go func(ps *PS) {
			defer wg.Done()
			if err := ps.Serve(); err != nil {
				errCh <- err
			}
		}(ps)
	}
	clientStats := make([][]ClientRoundStats, k)
	for id, l := range learners {
		wg.Add(1)
		go func(id int, l core.Learner) {
			defer wg.Done()
			var uc compress.Codec
			if !up.IsDense() {
				var err error
				uc, err = up.NewCodec(core.ClientCodecSeed(seed, id))
				if err != nil {
					errCh <- err
					return
				}
			}
			st, err := RunClient(ClientConfig{
				ID:                    id,
				Learner:               l,
				Servers:               addrs,
				Rounds:                rounds,
				LocalSteps:            2,
				Filter:                filter,
				Schedule:              nn.ConstantLR(0.3),
				Seed:                  seed,
				Timeout:               5 * time.Second,
				Codec:                 uc,
				AcceptEncodedDownlink: !down.IsDense(),
			})
			if err != nil {
				errCh <- err
				return
			}
			clientStats[id] = st
		}(id, l)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("distributed codec run failed: %v", err)
	}

	params := make([][]float64, k)
	for i, l := range learners {
		params[i] = l.Params()
	}
	stats := make([]PSStats, p)
	for i, ps := range servers {
		stats[i] = ps.Stats()
	}
	return params, stats, clientStats
}

// runEngineCodec runs the in-process engine with the same codec specs
// and returns params plus the engine's per-round stats.
func runEngineCodec(t *testing.T, learners []core.Learner, p, rounds int,
	filter aggregate.Rule, seed uint64, up, down compress.Spec) ([][]float64, []core.RoundStats) {
	t.Helper()
	eng, err := core.NewEngine(core.Config{
		Clients:       len(learners),
		Servers:       p,
		Rounds:        rounds,
		LocalSteps:    2,
		Filter:        filter,
		Schedule:      nn.ConstantLR(0.3),
		Seed:          seed,
		EvalEvery:     -1,
		UploadCodec:   up,
		DownlinkCodec: down,
	}, learners)
	if err != nil {
		t.Fatal(err)
	}
	stats := eng.Run()
	params := make([][]float64, len(learners))
	for i, l := range learners {
		params[i] = l.Params()
	}
	return params, stats
}

func mustSpec(t *testing.T, s string) compress.Spec {
	t.Helper()
	sp, err := compress.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestDistributedUploadCodecMatchesEngine: with the uplink codec seeded
// by ClientCodecSeed on both sides, the distributed run must stay
// bit-identical to the engine for every codec family — including the
// stateful ef+ codec, whose residual advances once per round on each
// path, and randk, whose support is drawn from the shared per-client
// stream.
func TestDistributedUploadCodecMatchesEngine(t *testing.T) {
	const k, p, rounds, seed = 4, 3, 3, 61
	for _, spec := range []string{"q8", "topk:0.25", "randk:0.5", "ef+topk:0.25"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			up := mustSpec(t, spec)
			dense := compress.Spec{}
			dist, _, clientStats := runDistributedCodec(t, makeLearners(t, k, seed), p, rounds,
				aggregate.TrimmedMean{Beta: 0.2}, seed, up, dense)
			eng, engStats := runEngineCodec(t, makeLearners(t, k, seed), p, rounds,
				aggregate.TrimmedMean{Beta: 0.2}, seed, up, dense)
			assertSameParams(t, dist, eng, "upload codec "+spec)

			// Both sides must agree on what the compressed uplink cost.
			distUp, engUp := 0, 0
			for _, st := range clientStats {
				for _, rs := range st {
					distUp += rs.UploadBytes
				}
			}
			for _, rs := range engStats {
				engUp += rs.UploadBytes
			}
			if distUp != engUp || distUp == 0 {
				t.Fatalf("upload byte accounting diverged: distributed %d, engine %d", distUp, engUp)
			}
		})
	}
}

// TestDistributedDownlinkCodecMatchesEngine: stateless downlink codecs
// (quantization, top-k) reconstruct identically whether applied by a
// persistent PS-side instance or the engine's per-round EncodeDecode,
// so the trajectories must still match bitwise.
func TestDistributedDownlinkCodecMatchesEngine(t *testing.T) {
	const k, p, rounds, seed = 4, 3, 3, 62
	for _, spec := range []string{"q8", "topk:0.5"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			down := mustSpec(t, spec)
			up := mustSpec(t, "q8")
			dist, psStats, clientStats := runDistributedCodec(t, makeLearners(t, k, seed), p, rounds,
				aggregate.TrimmedMean{Beta: 0.2}, seed, up, down)
			eng, engStats := runEngineCodec(t, makeLearners(t, k, seed), p, rounds,
				aggregate.TrimmedMean{Beta: 0.2}, seed, up, down)
			assertSameParams(t, dist, eng, "downlink codec "+spec)

			distDown, engDown, psOut := 0, 0, 0
			for _, st := range clientStats {
				for _, rs := range st {
					distDown += rs.DownloadBytes
				}
			}
			for _, rs := range engStats {
				engDown += rs.DownloadBytes
			}
			for _, st := range psStats {
				psOut += st.BytesOut
			}
			if distDown != engDown || distDown == 0 {
				t.Fatalf("download byte accounting diverged: distributed %d, engine %d", distDown, engDown)
			}
			if psOut != distDown {
				t.Fatalf("PS BytesOut %d != client DownloadBytes %d", psOut, distDown)
			}
		})
	}
}

// TestDenseCodecSpecIsIdentity is the refactor's no-regression contract:
// a run configured with the explicit "dense" spec must stay bit-identical
// to a run with no codec at all, and count the same 8-bytes-per-float
// wire cost the v1 protocol had.
func TestDenseCodecSpecIsIdentity(t *testing.T) {
	const k, p, rounds, seed = 4, 3, 3, 63
	dense := mustSpec(t, "dense")
	withSpec, _, clientStats := runDistributedCodec(t, makeLearners(t, k, seed), p, rounds,
		aggregate.TrimmedMean{Beta: 0.2}, seed, dense, dense)
	plain := runDistributed(t, makeLearners(t, k, seed), p, rounds, nil,
		aggregate.TrimmedMean{Beta: 0.2}, seed)
	assertSameParams(t, withSpec, plain, "dense spec identity")

	dim := makeLearners(t, 1, seed)[0].NumParams()
	for id, st := range clientStats {
		for _, rs := range st {
			if rs.UploadBytes != 8*dim {
				t.Fatalf("client %d round %d: dense UploadBytes = %d, want %d", id, rs.Round, rs.UploadBytes, 8*dim)
			}
			if rs.DownloadBytes != 8*dim*p {
				t.Fatalf("client %d round %d: dense DownloadBytes = %d, want %d", id, rs.Round, rs.DownloadBytes, 8*dim*p)
			}
		}
	}
}

// TestCodecUploadShrinksWireBytes pins the point of the layer: the
// compressed uplink must put at least 5x fewer payload bytes on the
// wire than the dense protocol at the same dimension.
func TestCodecUploadShrinksWireBytes(t *testing.T) {
	const k, p, rounds, seed = 4, 3, 2, 64
	_, _, denseStats := runDistributedCodec(t, makeLearners(t, k, seed), p, rounds,
		aggregate.TrimmedMean{Beta: 0.2}, seed, compress.Spec{}, compress.Spec{})
	_, _, efStats := runDistributedCodec(t, makeLearners(t, k, seed), p, rounds,
		aggregate.TrimmedMean{Beta: 0.2}, seed, mustSpec(t, "ef+topk:0.1"), compress.Spec{})
	denseUp, efUp := 0, 0
	for _, st := range denseStats {
		for _, rs := range st {
			denseUp += rs.UploadBytes
		}
	}
	for _, st := range efStats {
		for _, rs := range st {
			efUp += rs.UploadBytes
		}
	}
	if efUp == 0 || denseUp < 5*efUp {
		t.Fatalf("ef+topk:0.1 upload bytes %d vs dense %d: want >= 5x reduction", efUp, denseUp)
	}
}
