package node

import (
	"sync"
	"testing"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/attack"
	"fedms/internal/core"
	"fedms/internal/nn"
)

// testOracle is the deterministic pure loss stand-in shared by both
// runtimes in the parity tests: squared parameter norm. Bit-parity
// only needs the engine and the distributed processes to evaluate the
// same function; the CLI-level holdout oracle is itself derived purely
// from Seed, so this models the real deployment exactly.
func testOracle(m []float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v * v
	}
	return s
}

// runDistributedLoss mirrors runDistributed but wires a loss oracle
// into every PS and client, and lets the caller pick the server rule.
func runDistributedLoss(t *testing.T, learners []core.Learner, p, rounds int,
	byzantine map[int]attack.Attack, serverRule, filter aggregate.Rule,
	oracle aggregate.LossEval, seed uint64) [][]float64 {
	t.Helper()
	k := len(learners)

	servers := make([]*PS, p)
	addrs := make([]string, p)
	for i := 0; i < p; i++ {
		ps, err := NewPS(PSConfig{
			ID:         i,
			ListenAddr: "127.0.0.1:0",
			Clients:    k,
			Rounds:     rounds,
			Attack:     byzantine[i],
			ServerRule: serverRule,
			LossOracle: oracle,
			Seed:       seed,
			Timeout:    5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = ps
		addrs[i] = ps.Addr()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, p+k)
	for _, ps := range servers {
		wg.Add(1)
		go func(ps *PS) {
			defer wg.Done()
			if err := ps.Serve(); err != nil {
				errCh <- err
			}
		}(ps)
	}
	for id, l := range learners {
		wg.Add(1)
		go func(id int, l core.Learner) {
			defer wg.Done()
			_, err := RunClient(ClientConfig{
				ID:         id,
				Learner:    l,
				Servers:    addrs,
				Rounds:     rounds,
				LocalSteps: 2,
				Filter:     filter,
				LossOracle: oracle,
				Schedule:   nn.ConstantLR(0.3),
				Seed:       seed,
				Timeout:    5 * time.Second,
			})
			if err != nil {
				errCh <- err
			}
		}(id, l)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("distributed loss run failed: %v", err)
	}

	params := make([][]float64, k)
	for i, l := range learners {
		params[i] = l.Params()
	}
	return params
}

// runEngineLoss mirrors runEngine with the oracle and server rule set.
func runEngineLoss(t *testing.T, learners []core.Learner, p, rounds int,
	byzIDs []int, atk attack.Attack, serverRule, filter aggregate.Rule,
	oracle aggregate.LossEval, seed uint64) [][]float64 {
	t.Helper()
	cfg := core.Config{
		Clients:      len(learners),
		Servers:      p,
		ByzantineIDs: byzIDs,
		Rounds:       rounds,
		LocalSteps:   2,
		Attack:       atk,
		Filter:       filter,
		ServerFilter: serverRule,
		LossOracle:   oracle,
		Schedule:     nn.ConstantLR(0.3),
		Seed:         seed,
		EvalEvery:    -1,
	}
	eng, err := core.NewEngine(cfg, learners)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	params := make([][]float64, len(learners))
	for i, l := range learners {
		params[i] = l.Params()
	}
	return params
}

// TestDistributedMatchesEngineLossFilter: engine/distributed bit-parity
// with FedGreed as the client filter behind the shared oracle — the
// PR-7 extension of the existing parity suite to the oracle dispatch
// path.
func TestDistributedMatchesEngineLossFilter(t *testing.T) {
	const k, p, rounds, seed = 6, 3, 4, 36
	dist := runDistributedLoss(t, makeLearners(t, k, seed), p, rounds,
		nil, nil, aggregate.FedGreed{}, testOracle, seed)
	eng := runEngineLoss(t, makeLearners(t, k, seed), p, rounds,
		nil, attack.None{}, nil, aggregate.FedGreed{}, testOracle, seed)
	assertSameParams(t, dist, eng, "fedgreed filter with oracle")
}

// TestDistributedMatchesEngineLossServerRule: parity when the benign
// servers themselves aggregate with a loss rule, under an attacking
// server — the PS-side oracle dispatch.
func TestDistributedMatchesEngineLossServerRule(t *testing.T) {
	const k, p, rounds, seed = 5, 5, 3, 37
	byzID := 1
	atk := attack.Noise{Sigma: 1}
	dist := runDistributedLoss(t, makeLearners(t, k, seed), p, rounds,
		map[int]attack.Attack{byzID: atk}, aggregate.LossCluster{}, aggregate.TrimmedMean{Beta: 0.2},
		testOracle, seed)
	eng := runEngineLoss(t, makeLearners(t, k, seed), p, rounds,
		[]int{byzID}, atk, aggregate.LossCluster{}, aggregate.TrimmedMean{Beta: 0.2},
		testOracle, seed)
	assertSameParams(t, dist, eng, "losscluster server rule with oracle")
}

// TestDistributedLossFilterWithoutOracle: a loss-rule filter with no
// oracle must still run both runtimes to the same fallback trajectory
// — the degraded mode a holdout-less deployment lands in.
func TestDistributedLossFilterWithoutOracle(t *testing.T) {
	const k, p, rounds, seed = 5, 3, 3, 38
	dist := runDistributedLoss(t, makeLearners(t, k, seed), p, rounds,
		nil, nil, aggregate.LossCluster{}, nil, seed)
	eng := runEngineLoss(t, makeLearners(t, k, seed), p, rounds,
		nil, attack.None{}, nil, aggregate.LossCluster{}, nil, seed)
	assertSameParams(t, dist, eng, "losscluster filter, no oracle")
}
