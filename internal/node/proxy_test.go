package node

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/nn"
)

// corruptingProxy forwards TCP bytes between a client and a PS,
// flipping one byte in the middle of every frame-sized chunk after the
// first few — a model of an unreliable or hostile network path.
type corruptingProxy struct {
	ln      net.Listener
	target  string
	corrupt func(n int, buf []byte) // mutates the nth forwarded chunk
}

func newCorruptingProxy(t *testing.T, target string, corrupt func(int, []byte)) *corruptingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &corruptingProxy{ln: ln, target: target, corrupt: corrupt}
	go p.serve()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *corruptingProxy) addr() string { return p.ln.Addr().String() }

func (p *corruptingProxy) serve() {
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		out, err := net.Dial("tcp", p.target)
		if err != nil {
			in.Close()
			return
		}
		// Downstream (PS -> client) passes through untouched.
		go func() {
			defer in.Close()
			defer out.Close()
			_, _ = io.Copy(in, out)
		}()
		// Upstream (client -> PS) gets corrupted.
		go func() {
			defer in.Close()
			defer out.Close()
			buf := make([]byte, 32<<10)
			chunk := 0
			for {
				n, err := in.Read(buf)
				if n > 0 {
					p.corrupt(chunk, buf[:n])
					chunk++
					if _, werr := out.Write(buf[:n]); werr != nil {
						return
					}
				}
				if err != nil {
					return
				}
			}
		}()
	}
}

// TestCorruptedPathDetected runs a client through a byte-flipping proxy:
// the PS must reject the corrupted frame via the CRC, aborting the
// round rather than training on damaged weights.
func TestCorruptedPathDetected(t *testing.T) {
	const seed = 70
	learners := makeLearners(t, 1, seed)
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: 1, Rounds: 3,
		Seed: seed, Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	psDone := make(chan error, 1)
	go func() { psDone <- ps.Serve() }()

	proxy := newCorruptingProxy(t, ps.Addr(), func(chunk int, buf []byte) {
		// Leave the hello (chunk 0) intact; corrupt later payloads.
		if chunk >= 1 && len(buf) > 100 {
			buf[len(buf)/2] ^= 0xFF
		}
	})

	var wg sync.WaitGroup
	var clientErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, clientErr = RunClient(ClientConfig{
			ID: 0, Learner: learners[0], Servers: []string{proxy.addr()},
			Rounds: 3, LocalSteps: 1, FullUpload: true,
			Filter: aggregate.Mean{}, Schedule: nn.ConstantLR(0.1),
			Seed: seed, Timeout: 3 * time.Second,
		})
	}()
	wg.Wait()

	select {
	case err := <-psDone:
		if err == nil {
			t.Fatal("PS completed despite corrupted frames")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("PS hung on corrupted path")
	}
	if clientErr == nil {
		t.Fatal("client should observe the aborted protocol")
	}
}

// TestCleanProxyPassesThrough sanity-checks the proxy harness: with no
// corruption the run completes.
func TestCleanProxyPassesThrough(t *testing.T) {
	const seed = 71
	learners := makeLearners(t, 1, seed)
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: 1, Rounds: 2,
		Seed: seed, Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ps.Serve() }()

	proxy := newCorruptingProxy(t, ps.Addr(), func(int, []byte) {})
	_, err = RunClient(ClientConfig{
		ID: 0, Learner: learners[0], Servers: []string{proxy.addr()},
		Rounds: 2, LocalSteps: 1, FullUpload: true,
		Filter: aggregate.Mean{}, Schedule: nn.ConstantLR(0.1),
		Seed: seed, Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatalf("clean proxy run failed: %v", err)
	}
}
