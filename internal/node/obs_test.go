package node

import (
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/obs"
	"fedms/internal/transport"
)

// TestPSDisseminationAccountingFailedSends pins the dissemination
// accounting fix: BytesOut/FloatsOut must count only downlinks that
// actually left the wire. Client 1 sends its upload and slams the
// connection before reading the global model, so the PS's send to it
// fails; the pre-fix code counted the round's totals before the sends
// completed and would report both clients' downlinks.
func TestPSDisseminationAccountingFailedSends(t *testing.T) {
	const dim = 4
	vec := []float64{1, 2, 3, 4}

	p := &PS{cfg: PSConfig{
		ID: 0, Clients: 2, Rounds: 1,
		Tolerant:   true,
		Timeout:    2 * time.Second,
		ServerRule: aggregate.Mean{},
	}}
	p.om = newPSMetrics(nil, 0, "mean")
	p.v2ok = make([]bool, 2)

	srv0, cli0 := net.Pipe()
	srv1, cli1 := net.Pipe()
	conns := []*transport.Conn{transport.NewConn(srv0), transport.NewConn(srv1)}
	c0 := transport.NewConn(cli0)
	c1 := transport.NewConn(cli1)
	for _, c := range append(conns, c0, c1) {
		c.Timeout = 2 * time.Second
	}
	upload := func(sender int) *transport.Message {
		return &transport.Message{
			Type: transport.TypeUpload, Round: 0,
			Sender: uint32(sender), Flag: 1,
			Vec: append([]float64(nil), vec...),
		}
	}

	type downlink struct {
		bytes, floats int
		err           error
	}
	got := make(chan downlink, 1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // client 0: full round
		defer wg.Done()
		if err := c0.Send(upload(0)); err != nil {
			got <- downlink{err: err}
			return
		}
		m, err := c0.Recv()
		if err != nil {
			got <- downlink{err: err}
			return
		}
		got <- downlink{bytes: m.ModelWireBytes(), floats: m.ModelWireFloats()}
	}()
	go func() { // client 1: upload, then vanish before the downlink
		defer wg.Done()
		_ = c1.Send(upload(1))
		_ = c1.Close()
	}()

	pending := make([]*transport.Message, 2)
	if err := p.serveRound(0, conns, pending); err != nil {
		t.Fatalf("serveRound: %v", err)
	}
	wg.Wait()
	d := <-got
	if d.err != nil {
		t.Fatalf("client 0 round: %v", d.err)
	}

	st := p.Stats()
	if st.UploadsReceived != 2 || st.BytesIn != 2*dim*8 || st.FloatsIn != 2*dim {
		t.Fatalf("upload accounting: got %+v", st)
	}
	// Only client 0's downlink landed: the totals must reconcile with
	// what that one surviving client measured on its end of the wire.
	if st.BytesOut != d.bytes {
		t.Fatalf("BytesOut = %d, surviving client downloaded %d", st.BytesOut, d.bytes)
	}
	if st.FloatsOut != d.floats {
		t.Fatalf("FloatsOut = %d, surviving client received %d floats", st.FloatsOut, d.floats)
	}
	if st.BytesOut != dim*8 || st.FloatsOut != dim {
		t.Fatalf("want exactly one dense downlink (%d bytes, %d floats), got BytesOut=%d FloatsOut=%d",
			dim*8, dim, st.BytesOut, st.FloatsOut)
	}
	if st.ClientsLost != 1 {
		t.Fatalf("ClientsLost = %d, want 1 (failed send)", st.ClientsLost)
	}
	if conns[1] != nil {
		t.Fatal("failed-send connection not removed from the round")
	}
}

// runHandmadeClient speaks just enough of the protocol for the accept
// tests: hello, one round-0 upload, one global-model receive.
func runHandmadeClient(t *testing.T, addr string, id int, vec []float64, errCh chan<- error) {
	t.Helper()
	conn, err := transport.Dial(addr, 5*time.Second)
	if err != nil {
		errCh <- err
		return
	}
	defer conn.Close()
	conn.Timeout = 5 * time.Second
	if err := conn.Send(&transport.Message{
		Type: transport.TypeHello, Sender: uint32(id), Flag: uint32(id), Vec: vec,
	}); err != nil {
		errCh <- err
		return
	}
	if err := conn.Send(&transport.Message{
		Type: transport.TypeUpload, Round: 0, Sender: uint32(id), Flag: 1, Vec: vec,
	}); err != nil {
		errCh <- err
		return
	}
	m, err := conn.Recv()
	if err != nil {
		errCh <- err
		return
	}
	if m.Type != transport.TypeGlobalModel {
		errCh <- io.ErrUnexpectedEOF
		return
	}
	errCh <- nil
}

// TestPSTolerantAcceptSurvivesGarbage pins the tolerant-accept fix: a
// tolerant PS must absorb malformed connections during its accept phase
// — raw garbage, a non-hello first frame, an out-of-range id — and
// still complete the round once the real clients arrive. The pre-fix
// code aborted Serve on the first one, tolerant or not.
func TestPSTolerantAcceptSurvivesGarbage(t *testing.T) {
	vec := []float64{1, 2, 3}
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: 2, Rounds: 1,
		Tolerant: true, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ps.Serve() }()

	// One of each malformed flavour, sequentially so the PS sees them
	// before the real clients.
	raw, err := net.Dial("tcp", ps.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = raw.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	_ = raw.Close()

	wrongType, err := transport.Dial(ps.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = wrongType.Send(&transport.Message{Type: transport.TypeUpload, Flag: 1, Vec: vec})
	_ = wrongType.Close()

	badID, err := transport.Dial(ps.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = badID.Send(&transport.Message{Type: transport.TypeHello, Flag: 99, Vec: vec})
	_ = badID.Close()

	errCh := make(chan error, 2)
	for id := 0; id < 2; id++ {
		go runHandmadeClient(t, ps.Addr(), id, vec, errCh)
	}
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	st := ps.Stats()
	if st.BadAccepts != 3 {
		t.Fatalf("BadAccepts = %d, want 3", st.BadAccepts)
	}
	if st.RoundsServed != 1 || st.UploadsReceived != 2 {
		t.Fatalf("round incomplete after garbage: %+v", st)
	}
}

// TestPSTolerantAcceptFloodSurvives: tolerance is unbounded — the old
// lifetime maxBadAccepts budget (32) turned a healthy PS fatal under a
// long junk flood, so a misdirected load generator could kill a
// federation before round 0. Now every junk connection is rejected by
// the zero-allocation prefilter (counted in both BadAccepts and
// PrefilterDrops) and the round completes once the real clients show.
func TestPSTolerantAcceptFloodSurvives(t *testing.T) {
	const flood = 48 // 1.5× the old lifetime budget
	vec := []float64{1, 2, 3}
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: 2, Rounds: 1,
		Tolerant: true, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ps.Serve() }()

	for i := 0; i < flood; i++ {
		raw, err := net.Dial("tcp", ps.Addr())
		if err != nil {
			t.Fatal(err)
		}
		_, _ = raw.Write([]byte("junk"))
		_ = raw.Close()
	}
	errCh := make(chan error, 2)
	for id := 0; id < 2; id++ {
		go runHandmadeClient(t, ps.Addr(), id, vec, errCh)
	}
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve turned fatal under junk flood: %v", err)
	}
	st := ps.Stats()
	if st.RoundsServed != 1 || st.UploadsReceived != 2 {
		t.Fatalf("round incomplete after flood: %+v", st)
	}
	if st.BadAccepts < 1 || st.PrefilterDrops != st.BadAccepts {
		t.Fatalf("junk should be prefilter-rejected: BadAccepts=%d PrefilterDrops=%d", st.BadAccepts, st.PrefilterDrops)
	}
}

// TestPSStrictAcceptGarbageFatal: strict mode keeps the pre-fix
// contract — the paper's synchronous model — where any malformed
// connection aborts Serve immediately.
func TestPSStrictAcceptGarbageFatal(t *testing.T) {
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: 2, Rounds: 1,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ps.Serve() }()

	raw, err := net.Dial("tcp", ps.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = raw.Write([]byte("junk"))
	_ = raw.Close()

	if err := <-serveErr; err == nil {
		t.Fatal("strict Serve accepted a malformed connection")
	}
	if got := ps.Stats().BadAccepts; got != 0 {
		t.Fatalf("strict mode counted %d BadAccepts, want 0", got)
	}
}

// TestObsDeterminismChaos is the observability contract for the
// distributed runtime: a seeded chaos run with metrics, tracing and
// logging all enabled must produce bit-identical final models to the
// same run with observability off. The make verify gate runs this under
// the race detector.
func TestObsDeterminismChaos(t *testing.T) {
	// Same scenario as the chaos tier's "mixed" case: that exact fault
	// schedule is pinned rerun-stable under -race by
	// TestChaosUploadFaultScenarios, so any divergence here is the
	// observability layer's fault, not a marginal frame racing a
	// deadline.
	base := chaosOpts{
		k: 4, p: 2, rounds: 5, seed: 101,
		filter:        aggregate.TrimmedMean{Beta: 0.2},
		psTolerant:    true,
		psTimeout:     2 * time.Second,
		clientTimeout: 8 * time.Second,
		clientFaults:  transport.FaultConfig{Seed: 7, Drop: 0.1, Corrupt: 0.1, Duplicate: 0.1},
	}

	dark, _, _ := runChaos(t, base)

	lit := base
	lit.reg = obs.NewRegistry()
	lit.traceSink = obs.NewTrace(0)
	lit.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	observed, stats, _ := runChaos(t, lit)

	assertSameParams(t, dark, observed, "observability on vs off")

	// The instruments must actually have fired: every PS round is traced
	// and mirrored into the registry.
	rounds := 0
	for _, st := range stats {
		rounds += st.RoundsServed
	}
	psEvents := 0
	for _, ev := range lit.traceSink.Events() {
		if ev.Name == "ps_round" {
			psEvents++
		}
	}
	if psEvents != rounds {
		t.Fatalf("trace has %d ps_round events, PSs served %d rounds", psEvents, rounds)
	}
	var text strings.Builder
	if err := lit.reg.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fedms_ps_rounds_served_total", "fedms_client_rounds_total", "fedms_transport_frames_sent_total"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("registry export missing %s:\n%s", want, text.String())
		}
	}
}
