package node

import (
	"net"
	"sync"
	"time"
)

// sourceLimiter is a per-source token-bucket accept rate limiter: each
// remote host gets its own bucket of `burst` tokens refilled at `rate`
// tokens/second, and a connection is admitted to the handshake stage
// only if its source still holds a token. This replaces the old
// lifetime maxBadAccepts counter, whose failure mode was exactly
// backwards: a rotating-source junk flood (fresh host per connection)
// eventually killed a healthy PS, while one aggressive source burned
// the shared budget for everyone. Per-source buckets throttle the
// abuser and nobody else — and never turn fatal.
//
// The limiter bounds *accept throughput*, not handshake correctness:
// a rate-limited connection is closed before the prefilter ever runs,
// so it costs one Accept and nothing else.
type sourceLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// sourceLimiterMaxBuckets caps the per-source table so an attacker
// rotating through spoofed-infeasible-but-many real source hosts
// cannot grow it without bound; full (idle) buckets are evicted first.
const sourceLimiterMaxBuckets = 4096

func newSourceLimiter(rate float64, burst int) *sourceLimiter {
	if burst <= 0 {
		burst = 1
	}
	return &sourceLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*tokenBucket),
	}
}

// allow consumes one token from source's bucket, reporting whether one
// was available. now is injected for deterministic tests.
func (l *sourceLimiter) allow(source string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[source]
	if b == nil {
		l.prune(now)
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[source] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
			b.last = now
		}
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// prune evicts replenished (idle) buckets once the table is full. A
// full bucket carries no throttling state — recreating it fresh is
// indistinguishable — so evicting them loses nothing. If every bucket
// is mid-throttle the table stays put; sources being actively limited
// are precisely the state worth keeping.
func (l *sourceLimiter) prune(now time.Time) {
	if len(l.buckets) < sourceLimiterMaxBuckets {
		return
	}
	for src, b := range l.buckets {
		tokens := b.tokens + now.Sub(b.last).Seconds()*l.rate
		if tokens >= l.burst {
			delete(l.buckets, src)
		}
	}
}

// remoteHost extracts the per-source rate-limit key from a connection:
// the remote IP without the ephemeral port (one abuser, many ports,
// one bucket).
func remoteHost(c net.Conn) string {
	addr := c.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}
