package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/attack"
	"fedms/internal/core"
	"fedms/internal/nn"
)

// TestDistributedByzantineClientParity runs the two-sided threat model
// over TCP — Byzantine clients uploading sign-flipped models, benign
// servers aggregating with a robust rule — and checks bitwise parity
// with the in-process engine.
func TestDistributedByzantineClientParity(t *testing.T) {
	const k, p, rounds, seed = 6, 3, 4, 41
	byzClient := 4

	// ---- Distributed run ----
	learners := makeLearners(t, k, seed)
	servers := make([]*PS, p)
	addrs := make([]string, p)
	serverRule := aggregate.TrimmedMean{Beta: 1.0 / 6.0}
	for i := 0; i < p; i++ {
		ps, err := NewPS(PSConfig{
			ID: i, ListenAddr: "127.0.0.1:0", Clients: k, Rounds: rounds,
			ServerRule: serverRule, Seed: seed, Timeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = ps
		addrs[i] = ps.Addr()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, p+k)
	for _, ps := range servers {
		wg.Add(1)
		go func(ps *PS) {
			defer wg.Done()
			if err := ps.Serve(); err != nil {
				errCh <- err
			}
		}(ps)
	}
	for id, l := range learners {
		cfg := ClientConfig{
			ID: id, Learner: l, Servers: addrs,
			Rounds: rounds, LocalSteps: 2, FullUpload: true,
			Filter:   aggregate.TrimmedMean{Beta: 1.0 / 3.0},
			Schedule: nn.ConstantLR(0.3), Seed: seed, Timeout: 5 * time.Second,
		}
		if id == byzClient {
			cfg.UploadAttack = attack.UploadSignFlip{}
		}
		wg.Add(1)
		go func(cfg ClientConfig) {
			defer wg.Done()
			if _, err := RunClient(cfg); err != nil {
				errCh <- err
			}
		}(cfg)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("distributed two-sided run failed: %v", err)
	}
	distParams := make([][]float64, k)
	for i, l := range learners {
		distParams[i] = l.Params()
	}

	// ---- In-process reference ----
	ref := makeLearners(t, k, seed)
	eng, err := core.NewEngine(core.Config{
		Clients:            k,
		Servers:            p,
		Rounds:             rounds,
		LocalSteps:         2,
		Upload:             core.FullUpload,
		Filter:             aggregate.TrimmedMean{Beta: 1.0 / 3.0},
		ServerFilter:       serverRule,
		ByzantineClientIDs: []int{byzClient},
		ClientAttack:       attack.UploadSignFlip{},
		Schedule:           nn.ConstantLR(0.3),
		Seed:               seed,
		EvalEvery:          -1,
	}, ref)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	engParams := make([][]float64, k)
	for i, l := range ref {
		engParams[i] = l.Params()
	}

	assertSameParams(t, distParams, engParams, "two-sided threat model")
}

// TestAuthenticatedFederation runs the protocol with per-frame HMAC on
// and verifies a client holding the wrong key is rejected.
func TestAuthenticatedFederation(t *testing.T) {
	const k, rounds, seed = 3, 2, 42
	key := []byte("fed-pool-secret")
	learners := makeLearners(t, k, seed)
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: k, Rounds: rounds,
		Seed: seed, Key: key, Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	psDone := make(chan error, 1)
	go func() { psDone <- ps.Serve() }()

	var wg sync.WaitGroup
	errCh := make(chan error, k)
	for id, l := range learners {
		clientKey := key
		if id == 2 {
			clientKey = []byte("wrong-key")
		}
		wg.Add(1)
		go func(id int, l core.Learner, clientKey []byte) {
			defer wg.Done()
			_, err := RunClient(ClientConfig{
				ID: id, Learner: l, Servers: []string{ps.Addr()},
				Rounds: rounds, LocalSteps: 1, FullUpload: true,
				Filter: aggregate.Mean{}, Schedule: nn.ConstantLR(0.1),
				Seed: seed, Key: clientKey, Timeout: 3 * time.Second,
			})
			if id == 2 && err == nil {
				errCh <- errWrongKeyAccepted
			}
			if id != 2 && err == nil {
				// Benign clients will also fail eventually because the
				// PS aborts on the forged client — either way is fine;
				// the requirement is that the run does NOT complete
				// cleanly with a forging participant.
				errCh <- errWrongKeyAccepted
			}
		}(id, l, clientKey)
	}
	wg.Wait()
	// The PS must abort with a MAC or protocol error, not serve rounds.
	select {
	case err := <-psDone:
		if err == nil {
			t.Fatal("PS completed despite a client with the wrong key")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("PS hung with a wrong-key client")
	}
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
}

var errWrongKeyAccepted = fmt.Errorf("node: wrong-key client was accepted")

// TestAuthenticatedFederationHappyPath: all keys match, training
// completes.
func TestAuthenticatedFederationHappyPath(t *testing.T) {
	const k, rounds, seed = 3, 3, 43
	key := []byte("fed-pool-secret")
	learners := makeLearners(t, k, seed)
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: k, Rounds: rounds,
		Seed: seed, Key: key, Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ps.Serve() }()

	var wg sync.WaitGroup
	errCh := make(chan error, k)
	for id, l := range learners {
		wg.Add(1)
		go func(id int, l core.Learner) {
			defer wg.Done()
			_, err := RunClient(ClientConfig{
				ID: id, Learner: l, Servers: []string{ps.Addr()},
				Rounds: rounds, LocalSteps: 1, FullUpload: true,
				Filter: aggregate.Mean{}, Schedule: nn.ConstantLR(0.1),
				Seed: seed, Key: key, Timeout: 3 * time.Second,
			})
			if err != nil {
				errCh <- err
			}
		}(id, l)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("authenticated run failed: %v", err)
	}
}
