// Package node implements the distributed Fed-MS runtime: parameter
// servers and clients as real networked processes speaking the
// internal/transport protocol over TCP.
//
// The topology matches the paper's system model: every client holds a
// persistent connection to every PS; there is no trusted central
// component. Each round, every client sends exactly one TypeUpload
// frame to every PS — carrying its model for the one PS selected by the
// sparse-upload rule and an empty "skip" frame to the others — which
// gives each PS a K-message barrier without any global coordinator.
// Benign PSs then broadcast their honest aggregate; Byzantine PSs run
// their configured attack (including per-client equivocation).
//
// All randomness (upload choices, attack noise) is derived from the
// shared experiment seed exactly as in the in-process engine
// (internal/core), so a distributed run reproduces the engine's results
// bit-for-bit — a property the integration tests assert.
//
// Fault tolerance is opt-in and layered on the same protocol: a
// Tolerant PS absorbs missing, corrupt and late uploads (the partial-
// participation term of the paper's analysis already budgets for
// missing models), a client with MinModels > 0 degrades gracefully when
// only P' < P global models arrive, and transport.FaultInjector drives
// deterministic chaos through both (see the chaos test tier).
package node

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/attack"
	"fedms/internal/checkpoint"
	"fedms/internal/compress"
	"fedms/internal/core"
	"fedms/internal/obs"
	"fedms/internal/sched"
	"fedms/internal/spill"
	"fedms/internal/transport"
)

// DefaultTimeout is the per-frame I/O timeout used when a config leaves
// Timeout zero.
const DefaultTimeout = 10 * time.Second

// maxBadFrames bounds how many consecutive corrupt or stale frames a
// tolerant reader skips before declaring the peer missing for the
// round, so a flood of garbage cannot stall a round forever.
const maxBadFrames = 8

// DefaultHelloDeadline bounds a new connection's hello handshake when
// PSConfig.HelloDeadline is zero. It is deliberately much shorter than
// DefaultTimeout: a peer that cannot produce a tiny hello within a
// couple of seconds is a slow-loris socket or a port scanner, not a
// slow client, and its handshake slot should recycle quickly.
const DefaultHelloDeadline = 2 * time.Second

// DefaultHandshakePool bounds how many hello handshakes may be pending
// concurrently when PSConfig.HandshakePool is zero. The pool is the
// server's only per-unadmitted-connection state: each slot costs one
// goroutine and one hello-capped read buffer, so the worst-case memory
// an unauthenticated flood can pin is pool × (stack + bufio buffer).
const DefaultHandshakePool = 64

// DefaultAcceptBurst is the per-source token-bucket size when
// PSConfig.AcceptRate is set but AcceptBurst is zero: enough for a
// client's dial-plus-quick-retry, small enough that one abusive source
// is throttled within a handful of connections.
const DefaultAcceptBurst = 4

// ErrCrashed reports a parameter server that was crashed mid-protocol
// (via Crash or CrashAfterRound).
var ErrCrashed = errors.New("node: PS crashed")

// PSConfig configures one parameter-server node.
type PSConfig struct {
	// ID is the server index in [0, P).
	ID int
	// ListenAddr is the TCP address to bind ("127.0.0.1:0" picks a free
	// port; see PS.Addr for the resolved address).
	ListenAddr string
	// Clients is K, the number of clients that will connect.
	Clients int
	// Rounds is the number of federated rounds to serve.
	Rounds int
	// StartRound is the first round index served (default 0). A
	// restarted server sets it to the round its rejoining clients will
	// send next, so a crash-restart cycle re-enters the protocol
	// mid-sequence.
	StartRound int
	// Attack, when non-nil, makes this PS Byzantine with the given
	// behaviour.
	Attack attack.Attack
	// ServerRule is the aggregation rule applied to received uploads
	// (default Mean, the paper's benign-PS behaviour; a robust rule
	// defends against Byzantine clients).
	ServerRule aggregate.Rule
	// LossOracle scores a candidate model on a server-held holdout
	// split; when set and ServerRule implements aggregate.LossRule,
	// aggregation routes through it (see core.Config.LossOracle for
	// the contract: deterministic, pure, never mutates the model).
	// Oracle evals are counted in Obs (fedms_ps_oracle_evals_total).
	LossOracle aggregate.LossEval
	// Shards, when > 1, streams uploads through the two-tier sharded
	// aggregation tree (aggregate.Sharded): each upload is routed to S
	// column-range shards as it clears the round barrier, so the server
	// never materialises the K×d matrix — per-shard memory is O(K·d/S).
	// Bit-identical to the unsharded rule for every value (the sharded
	// differential contract); rules without a sharded kernel, and loss
	// rules under an oracle, fall back to the unsharded path. 0 or 1
	// disables sharding.
	Shards int
	// Seed is the shared experiment seed (drives attack RNG streams).
	Seed uint64
	// Key, when non-empty, enables per-frame HMAC authentication; all
	// clients must share it.
	Key []byte
	// Timeout bounds each frame send/receive.
	Timeout time.Duration
	// Tolerant keeps the server running when clients time out, send
	// corrupt frames, or disconnect: a missing upload counts as a skip
	// (the sparse barrier already admits empty frames) and a dead
	// connection is removed from the round barrier. The default strict
	// mode aborts Serve on any client fault — the paper's synchronous
	// model.
	Tolerant bool
	// HelloDeadline bounds each frame of a new connection's hello
	// handshake (default min(DefaultHelloDeadline, Timeout)). It is the
	// most a slow-loris socket can hold a handshake slot.
	HelloDeadline time.Duration
	// HelloMaxBody caps the claimed body length of a not-yet-admitted
	// connection's frames (default transport.HelloMaxBodyLen). The
	// prefilter rejects larger claims from the peeked header before any
	// allocation; admitted connections revert to the protocol maxima.
	HelloMaxBody int
	// HandshakePool bounds concurrently pending hello handshakes
	// (default DefaultHandshakePool).
	HandshakePool int
	// AcceptRate, when positive, enables per-source token-bucket accept
	// rate limiting: each remote host may open at most AcceptRate
	// connections per second (bucket size AcceptBurst) before its
	// connections are shed at accept. Zero disables limiting.
	AcceptRate float64
	// AcceptBurst is the per-source bucket size (default
	// DefaultAcceptBurst; requires AcceptRate).
	AcceptBurst int
	// RequireToken admits only hellos carrying a valid connect token
	// (transport.ConnectToken under Key and Seed). Requires Key. New
	// clients obtain their token out of band — in this codebase the
	// shared (Key, Seed) pair lets clients mint their own — and a
	// restarted PS verifies statelessly: no issued-token table to lose.
	RequireToken bool
	// Faults, when non-nil, injects deterministic transport faults into
	// this server's dissemination links (labelled "ps<ID>->c<k>"). The
	// hello handshake is never faulted.
	Faults *transport.FaultInjector
	// CrashAfterRound, when positive, crashes the server abruptly —
	// closing the listener and every client connection — after serving
	// that many rounds. The deterministic crash hook of the chaos
	// tests; Serve returns ErrCrashed.
	CrashAfterRound int
	// DownlinkCodec, when non-nil, compresses global-model frames to
	// clients that advertised v2 support in their hello; everyone else
	// keeps dense v1 frames. Error-feedback codecs are rejected by NewPS
	// — a broadcast shares one codec across clients, so a per-stream
	// residual would be wrong for all of them.
	DownlinkCodec compress.Codec
	// Async switches this server from the K-frame barrier to the
	// windowed round lifecycle (DESIGN.md §7): each round closes when
	// every connection has delivered its round marker or the Window
	// expires, whichever is first; uploads up to Staleness rounds old
	// are admitted with the deterministic down-weight sched.Weight
	// applied before ServerRule (which must have a weighted kernel —
	// see aggregate.IsWeighted); future-round frames spill to a
	// disk-backed buffer and replay when their round opens.
	Async bool
	// Window is the async per-round aggregation window. Defaults to
	// sched.DefaultLatencyScale/4 when Async is set and Window is zero;
	// rejected outside async mode.
	Window time.Duration
	// Staleness is the async admission bound S (0 = fresh only).
	Staleness int
	// SpillDir places the deferred-upload spill segment (async only;
	// empty means the OS temp dir). SpillMem bounds the spill buffer's
	// in-memory payload bytes before records overflow to disk (0 =
	// spill.DefaultMemLimit, negative = straight to disk).
	SpillDir string
	SpillMem int
	// CheckpointPath, when set (async only), persists the scheduler
	// state after every window close — round horizon, aggregate, and
	// the flushed spill manifest — and restores it in NewPS when the
	// file exists, so a tolerant-PS restart resumes mid-window instead
	// of dropping the late uploads. The spill segment is pinned to
	// CheckpointPath + ".spill".
	CheckpointPath string

	// Logger, when non-nil, records one structured line per round (the
	// engine's slog pattern adopted by the distributed runtime).
	Logger *slog.Logger
	// Obs, when non-nil, registers this server's runtime counters and
	// the transport counters of its connections (fedms_ps_* and
	// fedms_transport_*, labelled by node). Observation never perturbs
	// the protocol: seeded runs are bit-identical with or without it
	// (see TestObsDeterminism*).
	Obs *obs.Registry
	// TraceSink, when non-nil, receives one obs.Event per served round
	// ("ps_round") with the round's barrier outcome and wire totals.
	TraceSink *obs.Trace
}

// PS is a running parameter-server node.
type PS struct {
	cfg PSConfig
	ln  net.Listener
	// sc is the shared round-lifecycle state machine (the same cursor
	// the in-process engine drives); spill is the async deferred-upload
	// buffer (nil in sync mode).
	sc    *sched.Scheduler
	spill *spill.Buffer

	mu       sync.Mutex
	crashed  bool
	accepted []*transport.Conn // every conn ever accepted, for Crash
	lastAgg  []float64
	history  [][]float64
	// aggBuf is a benign server's round-persistent aggregation output
	// buffer: without an Attack nothing retains the aggregate past the
	// round (history is only kept for Byzantine servers, the empty-round
	// path copies), so the rules write in place instead of allocating d
	// floats per round.
	aggBuf []float64
	stats  PSStats
	// v2ok[id] records whether client id's hello advertised v2 codec
	// frames; only those clients may receive an encoded downlink.
	v2ok []bool

	om *psMetrics         // registry mirror of stats (no-op when Obs is nil)
	tm *transport.Metrics // wire counters shared by this server's conns
	// obsOn gates the wall-clock measurements (barrier wait) that feed
	// histograms and traces; with everything disabled not even
	// time.Now is called on the protocol path.
	obsOn bool
}

// PSStats reports a server's lifetime counters.
type PSStats struct {
	// RoundsServed counts completed aggregation/dissemination rounds.
	RoundsServed int
	// UploadsReceived counts non-empty model uploads.
	UploadsReceived int
	// UploadsMissed counts round slots where a client's upload never
	// arrived (timeout or unrecoverable corruption) — tolerant mode
	// only; strict mode aborts instead.
	UploadsMissed int
	// ClientsLost counts connections dropped mid-protocol (tolerant
	// mode only).
	ClientsLost int
	// BadAccepts counts malformed connections absorbed during the
	// accept phase (tolerant mode only; strict mode aborts instead).
	BadAccepts int
	// PrefilterDrops counts connections the zero-allocation hello
	// prefilter rejected on the header alone — bad magic, bad version,
	// first frame not a hello, or a body claim over the hello-phase cap
	// (a subset of BadAccepts).
	PrefilterDrops int
	// TokenRejects counts hellos whose connect token failed
	// verification under RequireToken (a subset of BadAccepts).
	TokenRejects int
	// RateLimited counts connections shed by the per-source accept rate
	// limiter before any handshake work (not counted in BadAccepts —
	// shedding is throughput control, not a protocol violation).
	RateLimited int
	// FloatsIn and FloatsOut count float64-equivalent model elements
	// that actually crossed the wire: dense elements for v1 frames,
	// ceil(payload bytes / 8) for codec frames. A failed downlink send
	// counts nothing.
	FloatsIn  int
	FloatsOut int
	// ShardPeakBytes is the largest per-shard accumulator footprint any
	// sharded aggregation round reached (0 when Shards is disabled) —
	// the observable side of the O(K·d/S) memory contract.
	ShardPeakBytes int64
	// BytesIn and BytesOut count model payload bytes on the wire (dense
	// models count 8 bytes per element, codec payloads their encoded
	// size). Only successful sends count toward BytesOut, so under
	// injected send failures it reconciles with the surviving clients'
	// DownloadBytes sum.
	BytesIn  int
	BytesOut int
	// Async lifecycle counters, all zero in sync mode. UploadsStale
	// counts admitted down-weighted uploads (a subset of
	// UploadsReceived); UploadsDropped counts models past the staleness
	// bound; UploadsDeferred counts future-round models parked in the
	// spill buffer for replay; WindowExpired counts connections whose
	// round marker had not arrived when the window deadline fired.
	UploadsStale    int
	UploadsDropped  int
	UploadsDeferred int
	WindowExpired   int
	// SpillPeakBytes is the high-water byte size of the spill buffer's
	// disk segment.
	SpillPeakBytes int64
}

// NewPS binds the listener and returns the node; call Serve to run the
// protocol.
func NewPS(cfg PSConfig) (*PS, error) {
	if cfg.Clients <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("node: PS %d needs positive Clients and Rounds", cfg.ID)
	}
	if cfg.CrashAfterRound < 0 {
		return nil, fmt.Errorf("node: PS %d CrashAfterRound must be non-negative", cfg.ID)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("node: PS %d Shards must be non-negative, got %d", cfg.ID, cfg.Shards)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.HelloDeadline < 0 {
		return nil, fmt.Errorf("node: PS %d HelloDeadline must be non-negative, got %v", cfg.ID, cfg.HelloDeadline)
	}
	if cfg.HelloDeadline == 0 {
		cfg.HelloDeadline = DefaultHelloDeadline
		if cfg.Timeout < cfg.HelloDeadline {
			cfg.HelloDeadline = cfg.Timeout
		}
	}
	if cfg.HelloMaxBody < 0 {
		return nil, fmt.Errorf("node: PS %d HelloMaxBody must be non-negative, got %d", cfg.ID, cfg.HelloMaxBody)
	}
	if cfg.HelloMaxBody == 0 {
		cfg.HelloMaxBody = transport.HelloMaxBodyLen
	}
	if cfg.HandshakePool < 0 {
		return nil, fmt.Errorf("node: PS %d HandshakePool must be non-negative, got %d", cfg.ID, cfg.HandshakePool)
	}
	if cfg.HandshakePool == 0 {
		cfg.HandshakePool = DefaultHandshakePool
	}
	if cfg.AcceptRate < 0 {
		return nil, fmt.Errorf("node: PS %d AcceptRate must be non-negative, got %v", cfg.ID, cfg.AcceptRate)
	}
	if cfg.AcceptBurst < 0 {
		return nil, fmt.Errorf("node: PS %d AcceptBurst must be non-negative, got %d", cfg.ID, cfg.AcceptBurst)
	}
	if cfg.AcceptBurst > 0 && cfg.AcceptRate == 0 {
		return nil, fmt.Errorf("node: PS %d AcceptBurst requires AcceptRate", cfg.ID)
	}
	if cfg.AcceptRate > 0 && cfg.AcceptBurst == 0 {
		cfg.AcceptBurst = DefaultAcceptBurst
	}
	if cfg.RequireToken && len(cfg.Key) == 0 {
		return nil, fmt.Errorf("node: PS %d RequireToken needs a Key to derive tokens from", cfg.ID)
	}
	if cfg.ServerRule == nil {
		cfg.ServerRule = aggregate.Mean{}
	}
	if cfg.DownlinkCodec != nil {
		if cfg.DownlinkCodec.Name() == "dense" {
			cfg.DownlinkCodec = nil
		} else if strings.HasPrefix(cfg.DownlinkCodec.Name(), "ef+") {
			return nil, fmt.Errorf("node: PS %d: error feedback is per-stream state and cannot be used on the broadcast downlink (codec %q)", cfg.ID, cfg.DownlinkCodec.Name())
		}
	}

	// Async validation mirrors core.Config.Validate: the window knobs
	// are rejected outside async mode, and the rule must carry a
	// weighted kernel so staleness down-weights reach the aggregate.
	if cfg.Async {
		if cfg.Window == 0 {
			cfg.Window = sched.DefaultLatencyScale / 4
		}
		if cfg.Window < 0 {
			return nil, fmt.Errorf("node: PS %d Window must be positive, got %v", cfg.ID, cfg.Window)
		}
		if cfg.Staleness < 0 {
			return nil, fmt.Errorf("node: PS %d Staleness must be non-negative, got %d", cfg.ID, cfg.Staleness)
		}
		if !aggregate.IsWeighted(cfg.ServerRule) {
			return nil, fmt.Errorf("node: PS %d: rule %q has no weighted kernel; async staleness down-weighting requires one", cfg.ID, cfg.ServerRule.Name())
		}
	} else {
		if cfg.Window != 0 || cfg.Staleness != 0 {
			return nil, fmt.Errorf("node: PS %d: Window/Staleness require Async mode", cfg.ID)
		}
		if cfg.SpillDir != "" || cfg.SpillMem != 0 || cfg.CheckpointPath != "" {
			return nil, fmt.Errorf("node: PS %d: spill/checkpoint knobs require Async mode", cfg.ID)
		}
	}

	// Checkpoint restore: a restarted async server resumes at the
	// persisted round horizon, re-seeds its aggregate from the saved
	// params, and reopens the flushed spill segment so the uploads
	// still in flight toward future rounds replay instead of dropping.
	var restored *checkpoint.State
	var spillBuf *spill.Buffer
	if cfg.Async {
		scfg := spill.Config{MemLimit: cfg.SpillMem, Dir: cfg.SpillDir}
		if cfg.CheckpointPath != "" {
			scfg.Path = cfg.CheckpointPath + ".spill"
			st, err := checkpoint.LoadFile(cfg.CheckpointPath)
			switch {
			case err == nil:
				a, ok, aerr := checkpoint.ReadAsyncMeta(st)
				if aerr != nil {
					return nil, fmt.Errorf("node: PS %d checkpoint: %w", cfg.ID, aerr)
				}
				if !ok {
					return nil, fmt.Errorf("node: PS %d: %s is not an async checkpoint", cfg.ID, cfg.CheckpointPath)
				}
				if a.Window != cfg.Window || a.Staleness != cfg.Staleness {
					return nil, fmt.Errorf("node: PS %d: checkpoint window/staleness %v/%d disagree with config %v/%d",
						cfg.ID, a.Window, a.Staleness, cfg.Window, cfg.Staleness)
				}
				cfg.StartRound = st.Round
				restored = st
				if a.SpillPath != "" {
					// A torn tail (crash mid-write) truncates away inside
					// Open; recovering fewer records than the manifest
					// promised is expected after such a crash.
					b, _, oerr := spill.Open(a.SpillPath, scfg)
					if oerr != nil {
						return nil, fmt.Errorf("node: PS %d spill: %w", cfg.ID, oerr)
					}
					spillBuf = b
				}
			case os.IsNotExist(err):
				// First boot: nothing to restore.
			default:
				return nil, fmt.Errorf("node: PS %d checkpoint: %w", cfg.ID, err)
			}
		}
		if spillBuf == nil {
			spillBuf = spill.New(scfg)
		}
	}
	if cfg.StartRound < 0 || cfg.StartRound >= cfg.Rounds {
		return nil, fmt.Errorf("node: PS %d StartRound %d out of range [0,%d)", cfg.ID, cfg.StartRound, cfg.Rounds)
	}
	mode := sched.Sync
	if cfg.Async {
		mode = sched.Async
	}
	sc, err := sched.New(sched.Config{
		Mode: mode, Rounds: cfg.Rounds, StartRound: cfg.StartRound,
		Window: cfg.Window, Staleness: cfg.Staleness,
	})
	if err != nil {
		return nil, fmt.Errorf("node: PS %d: %w", cfg.ID, err)
	}

	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("node: PS %d listen: %w", cfg.ID, err)
	}
	p := &PS{cfg: cfg, ln: ln, sc: sc, spill: spillBuf}
	if restored != nil && len(restored.Params) > 0 {
		p.lastAgg = append([]float64(nil), restored.Params...)
	}
	p.om = newPSMetrics(cfg.Obs, cfg.ID, cfg.ServerRule.Name())
	p.tm = transport.NewMetrics(cfg.Obs, fmt.Sprintf("ps%d", cfg.ID))
	p.obsOn = cfg.Obs != nil || cfg.TraceSink != nil || cfg.Logger != nil
	return p, nil
}

// Addr returns the bound listen address.
func (p *PS) Addr() string { return p.ln.Addr().String() }

// Close shuts the listener (interrupting Serve's accept phase).
func (p *PS) Close() error { return p.ln.Close() }

// Crash abruptly terminates the server: the listener and every client
// connection close mid-protocol and Serve returns ErrCrashed. Clients
// see reset connections, exactly like a real process kill. Safe to call
// from any goroutine, at any time.
func (p *PS) Crash() {
	p.mu.Lock()
	p.crashed = true
	conns := append([]*transport.Conn(nil), p.accepted...)
	p.mu.Unlock()
	_ = p.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
}

func (p *PS) isCrashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// Stats returns a snapshot of the server's lifetime counters.
func (p *PS) Stats() PSStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Serve runs the full protocol: accept K clients, serve rounds
// StartRound..Rounds-1, close. In strict mode it returns the first
// fatal error (a crashed or timed-out client aborts the round — the
// synchronous model of the paper); in Tolerant mode it serves every
// round it can and fails only when no live clients remain. A crashed
// server returns ErrCrashed.
func (p *PS) Serve() error {
	defer p.ln.Close()
	// A crashed server keeps its spill segment on disk — that is the
	// state a checkpoint restart replays; a cleanly finished one
	// removes it.
	defer func() {
		if p.spill != nil && !p.isCrashed() {
			_ = p.spill.Close()
		}
	}()

	conns := make([]*transport.Conn, p.cfg.Clients)
	// pending[id] parks a future-round upload read early from client id
	// (see recvUpload); it never outlives its connection.
	pending := make([]*transport.Message, p.cfg.Clients)
	p.v2ok = make([]bool, p.cfg.Clients)
	defer func() {
		for _, c := range conns {
			if c != nil {
				_ = c.Close()
			}
		}
	}()

	// Accept phase: each client introduces itself with Hello{flag=id},
	// either carrying the shared initial model w_0 inline (legacy
	// single-frame hello) or — with HelloSeedFlag set — as a second
	// TypeHello seed frame behind a tiny first hello, so the prefilter's
	// hello-phase body cap stays aggressive. A rejoining client sends
	// its current model instead, seeding lastAgg for empty rounds.
	//
	// Handshakes run concurrently: acceptLoop sheds rate-limited and
	// post-quota connections at Accept, prefilters the rest from peeked
	// header bytes, and runs each surviving hello in its own goroutine
	// under a short HelloDeadline — a connected-but-silent socket costs
	// one bounded handshake slot, never a stall of the accept queue. In
	// strict mode any malformed connection is fatal (the paper's
	// synchronous model); in tolerant mode it is closed, counted, and
	// absorbed — there is no lifetime budget that junk can exhaust.
	results := make(chan acceptResult)
	stop := make(chan struct{})
	defer close(stop)
	var quotaMet atomic.Bool
	go p.acceptLoop(results, stop, &quotaMet)

	seeds := make([][]float64, p.cfg.Clients)
	for admitted := 0; admitted < p.cfg.Clients; {
		r := <-results
		if r.listenerErr != nil {
			if p.isCrashed() {
				return ErrCrashed
			}
			return fmt.Errorf("node: PS %d accept: %w", p.cfg.ID, r.listenerErr)
		}
		if r.err == nil && conns[r.id] != nil {
			r.err = fmt.Errorf("node: PS %d invalid client id %d", p.cfg.ID, r.id)
		}
		if r.err != nil {
			if fatal := p.badAccept(r); fatal != nil {
				return fatal
			}
			continue
		}
		if p.cfg.Faults != nil {
			r.conn.SetFaults(p.cfg.Faults.Link(fmt.Sprintf("ps%d->c%d", p.cfg.ID, r.id)))
		}
		p.v2ok[r.id] = r.v2ok
		conns[r.id] = r.conn
		seeds[r.id] = r.seed
		p.mu.Lock()
		p.accepted = append(p.accepted, r.conn)
		crashed := p.crashed
		p.mu.Unlock()
		if crashed {
			return ErrCrashed
		}
		admitted++
	}
	quotaMet.Store(true)
	go p.drainAccepts(results, stop)
	// Seed lastAgg (the empty-round fallback aggregate) from the lowest
	// client id with a non-empty hello seed — a deterministic choice,
	// where the old arrival-order seeding depended on dial timing.
	p.mu.Lock()
	if p.lastAgg == nil {
		for _, s := range seeds {
			if len(s) > 0 {
				p.lastAgg = append([]float64(nil), s...)
				break
			}
		}
	}
	p.mu.Unlock()

	for !p.sc.Done() {
		round := p.sc.Round()
		if err := p.serveRound(round, conns, pending); err != nil {
			if p.isCrashed() {
				return ErrCrashed
			}
			return err
		}
		if p.cfg.CrashAfterRound > 0 && round-p.cfg.StartRound+1 >= p.cfg.CrashAfterRound {
			p.Crash()
			return ErrCrashed
		}
		p.sc.Advance()
	}
	return nil
}

// acceptResult is one connection's handshake outcome, produced by a
// handshake goroutine and consumed by Serve's admission loop.
type acceptResult struct {
	conn *transport.Conn
	id   int
	v2ok bool
	// seed is the model the client introduced itself with (w_0, or a
	// rejoining client's current params).
	seed []float64
	// prefiltered marks a rejection decided by the header prefilter
	// alone; tokenReject marks a failed connect-token check. Both
	// refine err for the stats split.
	prefiltered bool
	tokenReject bool
	err         error
	// listenerErr reports the listener itself failing (close/crash):
	// the accept loop is over.
	listenerErr error
}

// acceptLoop accepts connections until the listener closes, shedding
// abusive sources at the cheapest possible point and handing the rest
// to bounded concurrent handshakes. It owns all pre-admission policy:
// per-source rate limiting (one Accept and a map lookup per shed
// conn), post-quota shedding (once all K clients are admitted every
// newcomer is junk by definition), and the handshake pool that bounds
// how much memory unauthenticated peers can pin.
func (p *PS) acceptLoop(results chan<- acceptResult, stop <-chan struct{}, quotaMet *atomic.Bool) {
	var limiter *sourceLimiter
	if p.cfg.AcceptRate > 0 {
		limiter = newSourceLimiter(p.cfg.AcceptRate, p.cfg.AcceptBurst)
	}
	sem := make(chan struct{}, p.cfg.HandshakePool)
	for {
		raw, err := p.ln.Accept()
		if err != nil {
			select {
			case results <- acceptResult{listenerErr: err}:
			case <-stop:
			}
			return
		}
		if quotaMet.Load() {
			_ = raw.Close()
			continue
		}
		if limiter != nil && !limiter.allow(remoteHost(raw), time.Now()) {
			_ = raw.Close()
			p.mu.Lock()
			p.stats.RateLimited++
			p.mu.Unlock()
			p.om.rateLimited.Inc()
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-stop:
			_ = raw.Close()
			return
		}
		p.om.handshakePool.Set(int64(len(sem)))
		go func() {
			defer func() {
				<-sem
				p.om.handshakePool.Set(int64(len(sem)))
			}()
			r := p.handshake(raw)
			select {
			case results <- r:
			case <-stop:
				if r.conn != nil {
					_ = r.conn.Close()
				}
			}
		}()
	}
}

// handshake runs one connection's hello under the hello deadline and
// the hello-phase body cap. The prefilter rejects junk from peeked
// header bytes before a single body byte is read or allocated; only a
// frame it admits reaches Recv. An admitted connection leaves with the
// protocol-maximum body cap and the steady-state timeout restored.
func (p *PS) handshake(raw net.Conn) acceptResult {
	conn := transport.NewConn(raw)
	conn.Timeout = p.cfg.HelloDeadline
	conn.SetKey(p.cfg.Key)
	conn.SetMetrics(p.tm)
	conn.SetMaxBodyLen(p.cfg.HelloMaxBody)
	if err := conn.PrefilterHello(p.cfg.HelloMaxBody); err != nil {
		return acceptResult{conn: conn, prefiltered: isPrefilterReject(err),
			err: fmt.Errorf("node: PS %d hello prefilter: %w", p.cfg.ID, err)}
	}
	hello, err := conn.Recv()
	if err != nil {
		return acceptResult{conn: conn, err: fmt.Errorf("node: PS %d hello: %w", p.cfg.ID, err)}
	}
	if hello.Type != transport.TypeHello {
		return acceptResult{conn: conn, err: fmt.Errorf("node: PS %d expected hello, got %s", p.cfg.ID, hello.Type)}
	}
	id := int(hello.Flag &^ uint32(transport.HelloSeedFlag))
	if id < 0 || id >= p.cfg.Clients {
		return acceptResult{conn: conn, err: fmt.Errorf("node: PS %d invalid client id %d", p.cfg.ID, id)}
	}
	info := transport.ParseHelloText(hello.Text)
	if p.cfg.RequireToken && !transport.VerifyConnectToken(p.cfg.Key, p.cfg.Seed, id, info.Token) {
		return acceptResult{conn: conn, id: id, tokenReject: true,
			err: fmt.Errorf("node: PS %d client %d: connect token rejected", p.cfg.ID, id)}
	}
	seed := hello.Vec
	if hello.Flag&uint32(transport.HelloSeedFlag) != 0 {
		// Two-frame handshake: the tiny hello is in, so the peer has
		// earned a full-size read for its model seed frame.
		conn.SetMaxBodyLen(0)
		m, err := conn.Recv()
		if err != nil {
			return acceptResult{conn: conn, err: fmt.Errorf("node: PS %d client %d hello seed: %w", p.cfg.ID, id, err)}
		}
		if m.Type != transport.TypeHello || int(m.Flag) != id {
			return acceptResult{conn: conn, err: fmt.Errorf("node: PS %d client %d: malformed hello seed frame", p.cfg.ID, id)}
		}
		seed = m.Vec
	}
	conn.SetMaxBodyLen(0)
	conn.Timeout = p.cfg.Timeout
	return acceptResult{conn: conn, id: id, v2ok: info.CodecV2, seed: seed}
}

// isPrefilterReject reports whether a PrefilterHello error was a
// protocol verdict from the header bytes (countable as a prefilter
// drop) rather than an I/O failure. ErrOversizeFrame wraps ErrTooLarge
// so the over-cap case is covered.
func isPrefilterReject(err error) bool {
	return errors.Is(err, transport.ErrBadMagic) ||
		errors.Is(err, transport.ErrBadVersion) ||
		errors.Is(err, transport.ErrNotHello) ||
		errors.Is(err, transport.ErrTooLarge)
}

// badAccept handles a connection that failed the hello handshake.
// Strict mode returns the cause (fatal — the paper's synchronous
// model); tolerant mode closes the connection, counts it, and absorbs
// it unconditionally. Abuse volume is bounded upstream by the
// per-source rate limiter and the handshake pool, not by a lifetime
// budget a rotating-source flood could exhaust.
func (p *PS) badAccept(r acceptResult) error {
	if r.conn != nil {
		_ = r.conn.Close()
	}
	if !p.cfg.Tolerant {
		return r.err
	}
	p.mu.Lock()
	p.stats.BadAccepts++
	if r.prefiltered {
		p.stats.PrefilterDrops++
	}
	if r.tokenReject {
		p.stats.TokenRejects++
	}
	count := p.stats.BadAccepts
	p.mu.Unlock()
	p.om.badAccepts.Inc()
	if r.prefiltered {
		p.om.prefilterDrops.Inc()
	}
	if r.tokenReject {
		p.om.tokenRejects.Inc()
	}
	if p.cfg.Logger != nil {
		p.cfg.Logger.Warn("ps bad accept", "ps", p.cfg.ID, "count", count, "err", r.err)
	}
	return nil
}

// drainAccepts consumes handshake results after the accept quota is
// met so in-flight handshake slots recycle while rounds are served.
// Everything arriving here is junk by definition — all K clients are
// admitted — and is absorbed like any other bad accept, never fatally
// (even in strict mode: the accept phase it polices is over).
func (p *PS) drainAccepts(results <-chan acceptResult, stop <-chan struct{}) {
	for {
		select {
		case r := <-results:
			if r.listenerErr != nil {
				return
			}
			if r.err == nil {
				r.err = fmt.Errorf("node: PS %d: connection after accept quota", p.cfg.ID)
			}
			if p.cfg.Tolerant {
				_ = p.badAccept(r)
			} else if r.conn != nil {
				_ = r.conn.Close()
			}
		case <-stop:
			return
		}
	}
}

// upload is one client's contribution to a round barrier.
type upload struct {
	client int
	// model marks a slot that carried a real model; pl is its validated
	// payload view (never densified here — aggregation consumes views).
	model  bool
	pl     compress.Payload
	bytes  int // model payload bytes on the wire
	floats int // float64-equivalent wire elements (ModelWireFloats)
	// missed marks a slot whose frame never arrived (timeout or too
	// much corruption); the connection stays live.
	missed bool
	// dead marks an unrecoverable connection.
	dead bool
	err  error
}

// recvUpload reads client id's round-r upload, skipping corrupt and
// stale frames in tolerant mode. When this round's upload was lost and
// the client has already sent a later round's, the future frame is
// parked in *pending (consumed first on the next call) instead of
// condemning a healthy connection.
func (p *PS) recvUpload(id, round int, conn *transport.Conn, pending **transport.Message) upload {
	for tries := 0; tries < maxBadFrames; tries++ {
		var m *transport.Message
		var err error
		if *pending != nil {
			m, *pending = *pending, nil
		} else {
			m, err = conn.Recv()
		}
		if err != nil {
			if p.cfg.Tolerant {
				if errors.Is(err, transport.ErrBadChecksum) || errors.Is(err, transport.ErrBadMAC) ||
					errors.Is(err, transport.ErrBadPayload) {
					// The stream is still frame-aligned: skip the
					// mangled frame and keep reading.
					p.om.framesSkipped.Inc()
					continue
				}
				if isTimeout(err) {
					return upload{client: id, missed: true, err: err}
				}
			}
			return upload{client: id, dead: true, err: err}
		}
		if p.cfg.Tolerant && m.Type == transport.TypeUpload {
			switch sched.DecideAt(sched.Sync, round, int(m.Round), 0).Outcome {
			case sched.DropStale:
				// A duplicated or delayed frame from an earlier round.
				p.om.framesSkipped.Inc()
				continue
			case sched.Defer:
				// This round's upload was dropped and the client moved
				// on. The frame we hold is a later round's: keep it.
				*pending = m
				return upload{client: id, missed: true,
					err: fmt.Errorf("client %d already at round %d", id, m.Round)}
			}
		}
		if m.Type != transport.TypeUpload || int(m.Round) != round {
			return upload{client: id, dead: true,
				err: fmt.Errorf("unexpected %s (round %d) from client %d", m.Type, m.Round, id)}
		}
		if m.Flag == 1 {
			pl, err := m.ModelPayload()
			if err != nil {
				// The frame checksummed, so a malformed codec payload is
				// a sender lying on the wire, not line noise. Tolerant
				// mode degrades it like corruption: skip and keep
				// reading (the barrier's maxBadFrames bound still
				// applies); strict mode condemns the connection.
				if p.cfg.Tolerant {
					p.om.framesSkipped.Inc()
					continue
				}
				return upload{client: id, dead: true, err: err}
			}
			return upload{client: id, model: true, pl: pl, bytes: m.ModelWireBytes(), floats: m.ModelWireFloats()}
		}
		return upload{client: id}
	}
	return upload{client: id, missed: true, err: errors.New("too many unreadable frames")}
}

// serveRound implements one aggregation + dissemination round.
func (p *PS) serveRound(round int, conns []*transport.Conn, pending []*transport.Message) error {
	if p.cfg.Async {
		return p.serveRoundAsync(round, conns)
	}
	live := 0
	results := make(chan upload, len(conns))
	var barrierStart time.Time
	if p.obsOn {
		barrierStart = time.Now()
	}
	for id, conn := range conns {
		if conn == nil {
			continue
		}
		live++
		go func(id int, conn *transport.Conn) {
			results <- p.recvUpload(id, round, conn, &pending[id])
		}(id, conn)
	}
	if live == 0 {
		return fmt.Errorf("node: PS %d round %d: no live clients", p.cfg.ID, round)
	}

	var members []int
	var missed, lost, bytesIn, floatsIn int
	views := make(map[int]compress.Payload)
	var firstErr error
	// The streaming sharded path: uploads are routed into the two-tier
	// tree as they clear the barrier instead of piling up in views, so
	// the full K×d matrix never exists on this server. The tree is built
	// lazily on the first model (which fixes d) and reduces in
	// ascending-client order regardless of arrival order — bit-identical
	// to the unsharded rule below by the sharded differential contract.
	useShard := p.cfg.Shards > 1 && aggregate.ShardableRule(p.cfg.ServerRule)
	var sa *aggregate.Sharded
	shardDim := 0
	waiting := make([]bool, len(conns))
	for id, conn := range conns {
		waiting[id] = conn != nil
	}
	for i := 0; i < live; i++ {
		u := <-results
		waiting[u.client] = false
		if i == 0 && p.cfg.Tolerant && p.cfg.Timeout > 0 {
			// Straggler window. The first result proves this round's
			// uploads are flowing, so holdouts — in practice frames the
			// fault layer dropped — get only Timeout/2 more before they
			// count as missed. Without this, a dropped frame stalls the
			// round by the full Timeout, which is exactly the receive
			// window the OTHER servers armed for the next round: honest
			// uploads then land on the deadline to the scheduler's
			// whim, and seeded reruns diverge. Capping the stall at
			// half the window restores a Timeout/2 margin, keeping the
			// injected fault schedule the only source of misses.
			dl := time.Now().Add(p.cfg.Timeout / 2)
			for id, w := range waiting {
				if w {
					_ = conns[id].SetRecvDeadline(dl)
				}
			}
		}
		switch {
		case u.dead && !p.cfg.Tolerant:
			if firstErr == nil {
				firstErr = fmt.Errorf("node: PS %d round %d: client %d: %w", p.cfg.ID, round, u.client, u.err)
			}
		case u.dead:
			_ = conns[u.client].Close()
			conns[u.client] = nil
			pending[u.client] = nil
			lost++
			missed++
		case u.missed:
			missed++
		case u.model:
			if useShard && sa == nil {
				shardDim = u.pl.Dim()
				sa, useShard = aggregate.NewSharded(p.cfg.ServerRule, shardDim, p.cfg.Shards, len(conns))
			}
			if sa != nil {
				if u.pl.Dim() != shardDim {
					if firstErr == nil {
						firstErr = fmt.Errorf("node: PS %d round %d: dimension mismatch from client %d", p.cfg.ID, round, u.client)
					}
				} else {
					sa.Offer(u.client, u.pl)
				}
			} else {
				views[u.client] = u.pl
			}
			members = append(members, u.client)
			bytesIn += u.bytes
			floatsIn += u.floats
		}
	}
	var barrierWait time.Duration
	if p.obsOn {
		barrierWait = time.Since(barrierStart)
	}
	if firstErr != nil {
		if sa != nil {
			sa.Abort()
		}
		return firstErr
	}

	// Aggregate in ascending client order — the same input order as
	// the in-process engine, for bitwise parity. The rule consumes the
	// payload views directly: a fused rule never densifies the codec
	// uploads, a rule without a payload kernel falls back to
	// densify-first inside AggregatePayloads (bit-identical either way;
	// see the aggregate.PayloadRule contract). A benign server writes
	// into its round-persistent buffer (nothing retains its aggregate
	// past the round); a Byzantine server allocates fresh — its history
	// feeds the adaptive attack.
	sort.Ints(members)
	var agg []float64
	aggFused, aggSharded := false, false
	oracleEvals := 0
	var shardPeak int64
	var dst []float64
	if p.cfg.Attack == nil {
		dst = p.aggBuf
	}
	if len(members) == 0 {
		if p.lastAgg == nil {
			return fmt.Errorf("node: PS %d round %d: no uploads and no previous aggregate", p.cfg.ID, round)
		}
		agg = append([]float64(nil), p.lastAgg...)
	} else if sa != nil {
		agg = sa.Finalize(dst)
		aggSharded = true
		shardPeak = sa.PeakShardBytes()
	} else {
		first := views[members[0]]
		dim := first.Dim()
		ordered := make([]compress.Payload, 0, len(members))
		for _, k := range members {
			v := views[k]
			if v.Dim() != dim {
				return fmt.Errorf("node: PS %d round %d: dimension mismatch from client %d", p.cfg.ID, round, k)
			}
			ordered = append(ordered, v)
		}
		agg, aggFused, oracleEvals = aggregate.AggregatePayloadsWithOracleInto(p.cfg.ServerRule, dst, ordered, p.cfg.LossOracle)
	}
	if dst != nil && len(members) > 0 {
		p.aggBuf = agg
	}
	p.mu.Lock()
	p.lastAgg = agg
	p.stats.RoundsServed++
	p.stats.UploadsReceived += len(members)
	p.stats.UploadsMissed += missed
	p.stats.ClientsLost += lost
	p.stats.BytesIn += bytesIn
	p.stats.FloatsIn += floatsIn
	if shardPeak > p.stats.ShardPeakBytes {
		p.stats.ShardPeakBytes = shardPeak
	}
	p.mu.Unlock()
	p.om.rounds.Inc()
	p.om.uploadsRecv.Add(int64(len(members)))
	p.om.uploadsMissed.Add(int64(missed))
	p.om.clientsLost.Add(int64(lost))
	p.om.bytesIn.Add(int64(bytesIn))
	p.om.floatsIn.Add(int64(floatsIn))
	if len(members) > 0 {
		switch {
		case aggSharded:
			p.om.aggSharded.Inc()
			if shardPeak > 0 {
				p.om.shardPeakBytes.Set(shardPeak)
			}
		case aggFused:
			p.om.aggFused.Inc()
		default:
			p.om.aggFallback.Inc()
		}
		p.om.aggDecodeBytes.Add(int64(bytesIn))
		p.om.oracleEvals.Add(int64(oracleEvals))
	}
	p.om.barrierWait.ObserveDuration(barrierWait)

	return p.disseminate(round, agg, conns, roundTally{
		members: len(members), missed: missed, lost: lost,
		bytesIn: bytesIn, barrierWait: barrierWait,
	})
}

// roundTally carries the aggregation phase's outcome into disseminate,
// which finishes the round's stats, trace and log line. The async
// fields stay zero in sync mode.
type roundTally struct {
	members     int
	missed      int
	lost        int
	bytesIn     int
	barrierWait time.Duration
	stale       int
	dropped     int
	deferred    int
	expired     int
}

// disseminate broadcasts the round aggregate to every live client —
// with Byzantine tampering where configured — then tallies the wire
// totals from successful sends and emits the round's trace and log
// line. The history records honest aggregates only (adaptive adversary
// knowledge), exactly as in the engine. Shared verbatim by the sync
// barrier and the async window (pure code motion from serveRound; the
// sync trace stays bit-identical).
func (p *PS) disseminate(round int, agg []float64, conns []*transport.Conn, t roundTally) error {
	var consistentTampered []float64
	if p.cfg.Attack != nil && !p.cfg.Attack.Equivocates() {
		ctx := &attack.Context{
			Round:   round,
			Server:  p.cfg.ID,
			Client:  -1,
			TrueAgg: agg,
			History: p.history,
			RNG:     core.AttackRNG(p.cfg.Seed, p.cfg.ID, round, -1, false),
		}
		consistentTampered = p.cfg.Attack.Tamper(ctx)
	}

	// Each send reports its outcome with the message it carried, and
	// the wire totals are tallied AFTER the barrier from successful
	// sends only. Counting before conn.Send completes — as this code
	// once did — inflates BytesOut/FloatsOut on failed sends, and
	// deriving FloatsOut from sent*len(agg) miscounts both equivocated
	// downlinks (per-client vectors) and codec-shrunk frames.
	type sendResult struct {
		client int
		msg    *transport.Message
		err    error
	}
	var wg sync.WaitGroup
	outcomes := make(chan sendResult, len(conns))
	for id, conn := range conns {
		if conn == nil {
			continue
		}
		out := agg
		switch {
		case p.cfg.Attack == nil:
		case consistentTampered != nil:
			out = consistentTampered
		default:
			ctx := &attack.Context{
				Round:   round,
				Server:  p.cfg.ID,
				Client:  id,
				TrueAgg: agg,
				History: p.history,
				RNG:     core.AttackRNG(p.cfg.Seed, p.cfg.ID, round, id, true),
			}
			out = p.cfg.Attack.Tamper(ctx)
		}
		msg := &transport.Message{
			Type:   transport.TypeGlobalModel,
			Round:  uint32(round),
			Sender: uint32(p.cfg.ID),
			Vec:    out,
		}
		if p.cfg.DownlinkCodec != nil && p.v2ok[id] {
			// Encode here, serially: the codec's scratch buffers are not
			// safe under the concurrent sends below, and each client may
			// receive a different (equivocated) vector anyway.
			enc, payload := p.cfg.DownlinkCodec.AppendEncode(nil, out)
			msg.Enc, msg.Payload, msg.Vec = enc, payload, nil
		}
		wg.Add(1)
		go func(id int, conn *transport.Conn, msg *transport.Message) {
			defer wg.Done()
			outcomes <- sendResult{client: id, msg: msg, err: conn.Send(msg)}
		}(id, conn, msg)
	}
	wg.Wait()
	close(outcomes)

	sent, bytesOut, floatsOut := 0, 0, 0
	var sendErrs []sendResult
	for r := range outcomes {
		if r.err != nil {
			sendErrs = append(sendErrs, r)
			continue
		}
		sent++
		bytesOut += r.msg.ModelWireBytes()
		floatsOut += r.msg.ModelWireFloats()
	}
	p.mu.Lock()
	p.stats.FloatsOut += floatsOut
	p.stats.BytesOut += bytesOut
	p.mu.Unlock()
	p.om.bytesOut.Add(int64(bytesOut))
	p.om.floatsOut.Add(int64(floatsOut))
	p.om.sendsFailed.Add(int64(len(sendErrs)))
	// Only a Byzantine server reads its history (adaptive-adversary
	// knowledge); a benign one retaining it would grow O(T·d) unread and
	// pin the reused aggregation buffer.
	if p.cfg.Attack != nil {
		p.history = append(p.history, agg)
	}

	sendLost := 0
	for _, e := range sendErrs {
		if !p.cfg.Tolerant {
			return fmt.Errorf("node: PS %d round %d: send to client %d: %w", p.cfg.ID, round, e.client, e.err)
		}
		if conns[e.client] != nil {
			_ = conns[e.client].Close()
			conns[e.client] = nil
			sendLost++
			p.mu.Lock()
			p.stats.ClientsLost++
			p.mu.Unlock()
			p.om.clientsLost.Inc()
		}
	}

	if p.cfg.TraceSink != nil {
		fields := map[string]float64{
			"uploads":     float64(t.members),
			"missed":      float64(t.missed),
			"lost":        float64(t.lost + sendLost),
			"sent":        float64(sent),
			"send_failed": float64(len(sendErrs)),
			"bytes_in":    float64(t.bytesIn),
			"bytes_out":   float64(bytesOut),
			"barrier_ms":  t.barrierWait.Seconds() * 1e3,
		}
		if p.cfg.Async {
			fields["stale_uploads"] = float64(t.stale)
			fields["dropped_uploads"] = float64(t.dropped)
			fields["deferred_uploads"] = float64(t.deferred)
			fields["window_expired"] = float64(t.expired)
			fields["spill_depth"] = float64(p.spill.Len())
			fields["spill_bytes"] = float64(p.spill.MemBytes() + p.spill.DiskBytes())
		}
		p.cfg.TraceSink.Emit(obs.Event{
			Round:  round,
			Node:   fmt.Sprintf("ps%d", p.cfg.ID),
			Name:   "ps_round",
			Fields: fields,
		})
	}
	if p.cfg.Logger != nil {
		attrs := []any{
			"ps", p.cfg.ID, "round", round,
			"uploads", t.members, "missed", t.missed, "lost", t.lost + sendLost,
			"bytes_in", t.bytesIn, "bytes_out", bytesOut,
			"barrier_ms", t.barrierWait.Seconds() * 1e3,
		}
		if p.cfg.Async {
			attrs = append(attrs, "stale", t.stale, "dropped", t.dropped,
				"deferred", t.deferred, "window_expired", t.expired,
				"spill_depth", p.spill.Len())
		}
		p.cfg.Logger.Info("ps round", attrs...)
	}
	return nil
}

// psArrival is one admitted upload of an async round: a payload view
// plus its staleness down-weight. The member set sorts by (client,
// origin) before aggregation so membership order — and therefore every
// aggregate bit — is independent of arrival interleaving.
type psArrival struct {
	client, origin, stale int
	weight                float64
	view                  compress.Payload
}

// asyncRecv is one connection's contribution to an async round: the
// frames admitted up to (and including) the round marker, plus the
// spill records of any future-round models that prove the marker lost.
type asyncRecv struct {
	client   int
	entries  []psArrival
	deferred []spill.Record
	bytes    int
	floats   int
	dropped  int
	missed   bool
	expired  bool
	dead     bool
	err      error
}

// recvAsyncUploads reads client id's frames for async round `round`
// until the round marker — a frame tagged with the current round —
// arrives or the window deadline passes. Stale frames within the bound
// are admitted down-weighted, frames past it are dropped, and a
// future-round frame means this round's marker was lost: its model is
// handed back for the spill buffer and the marker counts as missed.
// The reader owns the connection for the duration of the barrier, so
// it narrows the per-frame timeout toward the window deadline before
// each Recv (Recv re-arms conn.Timeout itself; see transport.Conn).
func (p *PS) recvAsyncUploads(id, round int, conn *transport.Conn, deadline time.Time) asyncRecv {
	out := asyncRecv{client: id}
	saved := conn.Timeout
	defer func() { conn.Timeout = saved }()
	bad := 0
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			out.missed, out.expired = true, true
			return out
		}
		if saved > 0 && remain > saved {
			remain = saved
		}
		conn.Timeout = remain
		m, err := conn.Recv()
		if err != nil {
			switch {
			case errors.Is(err, transport.ErrBadChecksum), errors.Is(err, transport.ErrBadMAC),
				errors.Is(err, transport.ErrBadPayload):
				if p.cfg.Tolerant {
					p.om.framesSkipped.Inc()
					if bad++; bad >= maxBadFrames {
						out.missed = true
						out.err = errors.New("too many unreadable frames")
						return out
					}
					continue
				}
				out.dead, out.err = true, err
				return out
			case isTimeout(err):
				// The window closed with this marker still outstanding
				// (in async mode a missing marker is the expected face of
				// a straggler, not a protocol fault): aggregate without
				// it.
				out.missed, out.expired = true, true
				out.err = err
				return out
			default:
				out.dead, out.err = true, err
				return out
			}
		}
		if m.Type != transport.TypeUpload {
			out.dead = true
			out.err = fmt.Errorf("unexpected %s (round %d) from client %d", m.Type, m.Round, id)
			return out
		}
		d := sched.DecideAt(sched.Async, round, int(m.Round), p.cfg.Staleness)
		switch d.Outcome {
		case sched.Accept, sched.AcceptStale:
			if m.Flag != 1 {
				if d.Outcome == sched.Accept {
					return out // skip marker: nothing this round
				}
				continue // a stale skip frame carries nothing
			}
			pl, perr := m.ModelPayload()
			if perr != nil {
				// The frame checksummed, so a malformed payload is a
				// sender lying on the wire; tolerant mode degrades it to
				// a miss (the marker is consumed) or a skipped stale
				// frame, strict mode condemns the connection.
				if !p.cfg.Tolerant {
					out.dead, out.err = true, perr
					return out
				}
				p.om.framesSkipped.Inc()
				if d.Outcome == sched.Accept {
					out.missed, out.err = true, perr
					return out
				}
				if bad++; bad >= maxBadFrames {
					out.missed = true
					return out
				}
				continue
			}
			out.entries = append(out.entries, psArrival{
				client: id, origin: int(m.Round), stale: d.Staleness, weight: d.Weight, view: pl,
			})
			out.bytes += m.ModelWireBytes()
			out.floats += m.ModelWireFloats()
			if d.Outcome == sched.Accept {
				return out // the marker closes this connection's round
			}
		case sched.Defer:
			// A future-round frame: this round's marker was lost and the
			// client has moved on. Park the model for replay when its
			// round opens; the marker counts as missed.
			if m.Flag == 1 {
				rec := spill.Record{Client: id, Server: p.cfg.ID, Origin: int(m.Round), Due: int(m.Round)}
				if m.Payload != nil {
					rec.Enc, rec.Data = byte(m.Enc), m.Payload
				} else {
					rec.Enc, rec.Data = byte(compress.EncDense), denseWire(m.Vec)
				}
				out.deferred = append(out.deferred, rec)
				out.bytes += m.ModelWireBytes()
				out.floats += m.ModelWireFloats()
			}
			out.missed = true
			return out
		case sched.DropStale:
			if m.Flag == 1 {
				out.bytes += m.ModelWireBytes()
				out.floats += m.ModelWireFloats()
				out.dropped++
			}
		}
	}
}

// serveRoundAsync implements one windowed aggregation + dissemination
// round: replay the spill, read every connection up to its round
// marker or the window deadline, admit stale uploads down-weighted,
// aggregate through the weighted kernels, checkpoint, disseminate.
func (p *PS) serveRoundAsync(round int, conns []*transport.Conn) error {
	var barrierStart time.Time
	if p.obsOn {
		barrierStart = time.Now()
	}

	// Spill replay: records parked for this round (or still admissibly
	// stale) join the member set before any socket is read, so a
	// checkpoint restart resumes mid-window instead of dropping the
	// late uploads. Popping exactly Len() records cycles not-yet-due
	// ones to the back once, preserving FIFO across rounds.
	var entries []psArrival
	dropped := 0
	for n := p.spill.Len(); n > 0; n-- {
		rec, ok, err := p.spill.Pop()
		if err != nil {
			return fmt.Errorf("node: PS %d round %d spill: %w", p.cfg.ID, round, err)
		}
		if !ok {
			break
		}
		d := sched.DecideAt(sched.Async, round, rec.Origin, p.cfg.Staleness)
		switch d.Outcome {
		case sched.Defer:
			if err := p.spill.Add(rec); err != nil {
				return fmt.Errorf("node: PS %d round %d spill requeue: %w", p.cfg.ID, round, err)
			}
		case sched.Accept, sched.AcceptStale:
			pl, perr := compress.ParsePayload(compress.Encoding(rec.Enc), rec.Data)
			if perr != nil {
				// The segment frame checksummed, so this payload was
				// malformed at the sender; drop it like any other
				// inadmissible upload.
				dropped++
				continue
			}
			entries = append(entries, psArrival{
				client: rec.Client, origin: rec.Origin, stale: d.Staleness, weight: d.Weight, view: pl,
			})
		case sched.DropStale:
			dropped++
		}
	}

	// Window barrier: one reader per connection, all bounded by the
	// same deadline. In a clean run every marker lands well inside the
	// window and the deadline never fires — wall clock only bounds the
	// faulty case, keeping seeded runs deterministic.
	deadline := time.Now().Add(p.cfg.Window)
	live := 0
	results := make(chan asyncRecv, len(conns))
	for id, conn := range conns {
		if conn == nil {
			continue
		}
		live++
		go func(id int, conn *transport.Conn) {
			results <- p.recvAsyncUploads(id, round, conn, deadline)
		}(id, conn)
	}
	if live == 0 {
		return fmt.Errorf("node: PS %d round %d: no live clients", p.cfg.ID, round)
	}

	var missed, lost, expired, bytesIn, floatsIn int
	var deferRecs []spill.Record
	var firstErr error
	for i := 0; i < live; i++ {
		r := <-results
		switch {
		case r.dead && !p.cfg.Tolerant:
			if firstErr == nil {
				firstErr = fmt.Errorf("node: PS %d round %d: client %d: %w", p.cfg.ID, round, r.client, r.err)
			}
		case r.dead:
			_ = conns[r.client].Close()
			conns[r.client] = nil
			lost++
			missed++
		default:
			if r.missed {
				missed++
			}
			if r.expired {
				expired++
			}
			entries = append(entries, r.entries...)
			deferRecs = append(deferRecs, r.deferred...)
			dropped += r.dropped
			bytesIn += r.bytes
			floatsIn += r.floats
		}
	}
	var barrierWait time.Duration
	if p.obsOn {
		barrierWait = time.Since(barrierStart)
	}
	if firstErr != nil {
		return firstErr
	}
	// Deferred records enter the spill in (client, origin) order, not
	// reader-completion order, so the segment content — and the
	// mem-vs-disk split under a tight MemLimit — is reproducible.
	sort.Slice(deferRecs, func(i, j int) bool {
		if deferRecs[i].Client != deferRecs[j].Client {
			return deferRecs[i].Client < deferRecs[j].Client
		}
		return deferRecs[i].Origin < deferRecs[j].Origin
	})
	for _, rec := range deferRecs {
		if err := p.spill.Add(rec); err != nil {
			return fmt.Errorf("node: PS %d round %d spill: %w", p.cfg.ID, round, err)
		}
	}
	deferred := len(deferRecs)

	// Weighted aggregation over the admitted set in (client, origin)
	// order. The weighted kernels reproduce the unweighted rules bit
	// for bit at weight 1 (the aggregate.WeightedRule contract), so a
	// wide window degenerates to the sync barrier's aggregate exactly.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].client != entries[j].client {
			return entries[i].client < entries[j].client
		}
		return entries[i].origin < entries[j].origin
	})
	fresh, staleN := 0, 0
	for _, e := range entries {
		if e.stale == 0 {
			fresh++
		} else {
			staleN++
		}
	}
	var agg []float64
	aggFused, aggSharded := false, false
	var shardPeak int64
	var dst []float64
	if p.cfg.Attack == nil {
		dst = p.aggBuf
	}
	if len(entries) == 0 {
		if p.lastAgg == nil {
			return fmt.Errorf("node: PS %d round %d: no uploads and no previous aggregate", p.cfg.ID, round)
		}
		agg = append([]float64(nil), p.lastAgg...)
	} else {
		dim := entries[0].view.Dim()
		ordered := make([]compress.Payload, len(entries))
		weights := make([]float64, len(entries))
		for i, e := range entries {
			if e.view.Dim() != dim {
				return fmt.Errorf("node: PS %d round %d: dimension mismatch from client %d", p.cfg.ID, round, e.client)
			}
			ordered[i] = e.view
			weights[i] = e.weight
		}
		if p.cfg.Shards > 1 {
			agg, aggSharded, shardPeak = aggregate.ShardAggregateWeightedPayloads(p.cfg.ServerRule, dst, ordered, weights, p.cfg.Shards)
			aggFused = aggSharded
		} else {
			agg, aggFused = aggregate.AggregateWeightedPayloads(p.cfg.ServerRule, dst, ordered, weights)
		}
		if dst != nil {
			p.aggBuf = agg
		}
	}

	p.mu.Lock()
	p.lastAgg = agg
	p.stats.RoundsServed++
	p.stats.UploadsReceived += len(entries)
	p.stats.UploadsMissed += missed
	p.stats.UploadsStale += staleN
	p.stats.UploadsDropped += dropped
	p.stats.UploadsDeferred += deferred
	p.stats.WindowExpired += expired
	p.stats.ClientsLost += lost
	p.stats.BytesIn += bytesIn
	p.stats.FloatsIn += floatsIn
	if shardPeak > p.stats.ShardPeakBytes {
		p.stats.ShardPeakBytes = shardPeak
	}
	if pd := p.spill.PeakDiskBytes(); pd > p.stats.SpillPeakBytes {
		p.stats.SpillPeakBytes = pd
	}
	p.mu.Unlock()
	p.om.rounds.Inc()
	p.om.uploadsRecv.Add(int64(len(entries)))
	p.om.uploadsMissed.Add(int64(missed))
	p.om.clientsLost.Add(int64(lost))
	p.om.bytesIn.Add(int64(bytesIn))
	p.om.floatsIn.Add(int64(floatsIn))
	p.om.winFresh.Add(int64(fresh))
	p.om.winStale.Add(int64(staleN))
	p.om.winDropped.Add(int64(dropped))
	p.om.winDeferred.Add(int64(deferred))
	p.om.windowExpired.Add(int64(expired))
	if p.cfg.Obs != nil {
		for _, e := range entries {
			p.om.staleHist.Observe(float64(e.stale))
		}
	}
	p.om.spillDepth.Set(int64(p.spill.Len()))
	p.om.spillBytes.Set(p.spill.MemBytes() + p.spill.DiskBytes())
	if len(entries) > 0 {
		switch {
		case aggSharded:
			p.om.aggSharded.Inc()
			if shardPeak > 0 {
				p.om.shardPeakBytes.Set(shardPeak)
			}
		case aggFused:
			p.om.aggFused.Inc()
		default:
			p.om.aggFallback.Inc()
		}
		p.om.aggDecodeBytes.Add(int64(bytesIn))
	}
	p.om.barrierWait.ObserveDuration(barrierWait)

	// Window close is the async commit point: persist the round
	// horizon, the aggregate and the flushed spill manifest, so a
	// restart re-enters the protocol exactly here.
	if p.cfg.CheckpointPath != "" {
		man, err := p.spill.Flush()
		if err != nil {
			return fmt.Errorf("node: PS %d round %d spill flush: %w", p.cfg.ID, round, err)
		}
		if man.Bytes > 0 {
			// Flushing pushes the in-memory backlog to disk, so the
			// segment high-water mark can move after the round's stats
			// snapshot.
			p.mu.Lock()
			if man.Bytes > p.stats.SpillPeakBytes {
				p.stats.SpillPeakBytes = man.Bytes
			}
			p.mu.Unlock()
		}
		st := &checkpoint.State{Round: round + 1, Seed: p.cfg.Seed, Params: agg}
		checkpoint.WriteAsyncMeta(st, checkpoint.AsyncState{
			Window: p.cfg.Window, Staleness: p.cfg.Staleness,
			SpillPath: man.Path, SpillRecords: man.Records, SpillBytes: man.Bytes,
		})
		if err := checkpoint.SaveFile(p.cfg.CheckpointPath, st); err != nil {
			return fmt.Errorf("node: PS %d round %d checkpoint: %w", p.cfg.ID, round, err)
		}
	}

	return p.disseminate(round, agg, conns, roundTally{
		members: len(entries), missed: missed, lost: lost,
		bytesIn: bytesIn, barrierWait: barrierWait,
		stale: staleN, dropped: dropped, deferred: deferred, expired: expired,
	})
}

// denseWire serializes a dense model to the codec wire format
// (little-endian float64s), so a parked dense upload round-trips
// bit-exactly through compress.ParsePayload(EncDense, ·). Mirrors the
// engine's helper of the same name.
func denseWire(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// isTimeout reports whether err is a network timeout (deadline
// exceeded), as opposed to a dead connection.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// ErrAborted reports a node shut down by its peer.
var ErrAborted = errors.New("node: aborted by peer")
