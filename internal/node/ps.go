// Package node implements the distributed Fed-MS runtime: parameter
// servers and clients as real networked processes speaking the
// internal/transport protocol over TCP.
//
// The topology matches the paper's system model: every client holds a
// persistent connection to every PS; there is no trusted central
// component. Each round, every client sends exactly one TypeUpload
// frame to every PS — carrying its model for the one PS selected by the
// sparse-upload rule and an empty "skip" frame to the others — which
// gives each PS a K-message barrier without any global coordinator.
// Benign PSs then broadcast their honest aggregate; Byzantine PSs run
// their configured attack (including per-client equivocation).
//
// All randomness (upload choices, attack noise) is derived from the
// shared experiment seed exactly as in the in-process engine
// (internal/core), so a distributed run reproduces the engine's results
// bit-for-bit — a property the integration tests assert.
package node

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/attack"
	"fedms/internal/core"
	"fedms/internal/transport"
)

// DefaultTimeout is the per-frame I/O timeout used when a config leaves
// Timeout zero.
const DefaultTimeout = 10 * time.Second

// PSConfig configures one parameter-server node.
type PSConfig struct {
	// ID is the server index in [0, P).
	ID int
	// ListenAddr is the TCP address to bind ("127.0.0.1:0" picks a free
	// port; see PS.Addr for the resolved address).
	ListenAddr string
	// Clients is K, the number of clients that will connect.
	Clients int
	// Rounds is the number of federated rounds to serve.
	Rounds int
	// Attack, when non-nil, makes this PS Byzantine with the given
	// behaviour.
	Attack attack.Attack
	// ServerRule is the aggregation rule applied to received uploads
	// (default Mean, the paper's benign-PS behaviour; a robust rule
	// defends against Byzantine clients).
	ServerRule aggregate.Rule
	// Seed is the shared experiment seed (drives attack RNG streams).
	Seed uint64
	// Key, when non-empty, enables per-frame HMAC authentication; all
	// clients must share it.
	Key []byte
	// Timeout bounds each frame send/receive.
	Timeout time.Duration
}

// PS is a running parameter-server node.
type PS struct {
	cfg PSConfig
	ln  net.Listener

	mu      sync.Mutex
	lastAgg []float64
	history [][]float64
	stats   PSStats
}

// PSStats reports a server's lifetime counters.
type PSStats struct {
	// RoundsServed counts completed aggregation/dissemination rounds.
	RoundsServed int
	// UploadsReceived counts non-empty model uploads.
	UploadsReceived int
	// FloatsIn and FloatsOut count model elements received/sent.
	FloatsIn  int
	FloatsOut int
}

// NewPS binds the listener and returns the node; call Serve to run the
// protocol.
func NewPS(cfg PSConfig) (*PS, error) {
	if cfg.Clients <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("node: PS %d needs positive Clients and Rounds", cfg.ID)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.ServerRule == nil {
		cfg.ServerRule = aggregate.Mean{}
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("node: PS %d listen: %w", cfg.ID, err)
	}
	return &PS{cfg: cfg, ln: ln}, nil
}

// Addr returns the bound listen address.
func (p *PS) Addr() string { return p.ln.Addr().String() }

// Close shuts the listener (interrupting Serve's accept phase).
func (p *PS) Close() error { return p.ln.Close() }

// Stats returns a snapshot of the server's lifetime counters.
func (p *PS) Stats() PSStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Serve runs the full protocol: accept K clients, serve Rounds rounds,
// close. It returns the first fatal error (a crashed or timed-out
// client aborts the round — the synchronous model of the paper).
func (p *PS) Serve() error {
	defer p.ln.Close()

	conns := make([]*transport.Conn, p.cfg.Clients)
	defer func() {
		for _, c := range conns {
			if c != nil {
				_ = c.Close()
			}
		}
	}()

	// Accept phase: each client introduces itself with Hello{flag=id}
	// carrying the shared initial model w_0.
	for accepted := 0; accepted < p.cfg.Clients; accepted++ {
		raw, err := p.ln.Accept()
		if err != nil {
			return fmt.Errorf("node: PS %d accept: %w", p.cfg.ID, err)
		}
		conn := transport.NewConn(raw)
		conn.Timeout = p.cfg.Timeout
		conn.SetKey(p.cfg.Key)
		hello, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("node: PS %d hello: %w", p.cfg.ID, err)
		}
		if hello.Type != transport.TypeHello {
			return fmt.Errorf("node: PS %d expected hello, got %s", p.cfg.ID, hello.Type)
		}
		id := int(hello.Flag)
		if id < 0 || id >= p.cfg.Clients || conns[id] != nil {
			return fmt.Errorf("node: PS %d invalid client id %d", p.cfg.ID, id)
		}
		conns[id] = conn
		if p.lastAgg == nil && len(hello.Vec) > 0 {
			p.lastAgg = append([]float64(nil), hello.Vec...)
		}
	}

	for round := 0; round < p.cfg.Rounds; round++ {
		if err := p.serveRound(round, conns); err != nil {
			return err
		}
	}
	return nil
}

// serveRound implements one aggregation + dissemination round.
func (p *PS) serveRound(round int, conns []*transport.Conn) error {
	type upload struct {
		client int
		vec    []float64
		err    error
	}
	results := make(chan upload, len(conns))
	for id, conn := range conns {
		go func(id int, conn *transport.Conn) {
			m, err := conn.Recv()
			if err != nil {
				results <- upload{client: id, err: err}
				return
			}
			if m.Type != transport.TypeUpload || int(m.Round) != round {
				results <- upload{client: id, err: fmt.Errorf("unexpected %s (round %d) from client %d", m.Type, m.Round, id)}
				return
			}
			if m.Flag == 1 {
				results <- upload{client: id, vec: m.Vec}
			} else {
				results <- upload{client: id}
			}
		}(id, conn)
	}

	var members []int
	vecs := make(map[int][]float64)
	var firstErr error
	for range conns {
		u := <-results
		if u.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("node: PS %d round %d: client %d: %w", p.cfg.ID, round, u.client, u.err)
		}
		if u.vec != nil {
			members = append(members, u.client)
			vecs[u.client] = u.vec
		}
	}
	if firstErr != nil {
		return firstErr
	}

	// Aggregate in ascending client order — the same input order as
	// the in-process engine, for bitwise parity.
	sort.Ints(members)
	var agg []float64
	if len(members) == 0 {
		if p.lastAgg == nil {
			return fmt.Errorf("node: PS %d round %d: no uploads and no previous aggregate", p.cfg.ID, round)
		}
		agg = append([]float64(nil), p.lastAgg...)
	} else {
		dim := len(vecs[members[0]])
		ordered := make([][]float64, 0, len(members))
		for _, k := range members {
			if len(vecs[k]) != dim {
				return fmt.Errorf("node: PS %d round %d: dimension mismatch from client %d", p.cfg.ID, round, k)
			}
			ordered = append(ordered, vecs[k])
		}
		agg = p.cfg.ServerRule.Aggregate(ordered)
	}
	p.mu.Lock()
	p.lastAgg = agg
	p.stats.RoundsServed++
	p.stats.UploadsReceived += len(members)
	for _, k := range members {
		p.stats.FloatsIn += len(vecs[k])
	}
	p.stats.FloatsOut += len(conns) * len(agg)
	p.mu.Unlock()

	// Dissemination, with Byzantine tampering where configured. The
	// history records honest aggregates only (adaptive adversary
	// knowledge), exactly as in the engine.
	var consistentTampered []float64
	if p.cfg.Attack != nil && !p.cfg.Attack.Equivocates() {
		ctx := &attack.Context{
			Round:   round,
			Server:  p.cfg.ID,
			Client:  -1,
			TrueAgg: agg,
			History: p.history,
			RNG:     core.AttackRNG(p.cfg.Seed, p.cfg.ID, round, -1, false),
		}
		consistentTampered = p.cfg.Attack.Tamper(ctx)
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(conns))
	for id, conn := range conns {
		out := agg
		switch {
		case p.cfg.Attack == nil:
		case consistentTampered != nil:
			out = consistentTampered
		default:
			ctx := &attack.Context{
				Round:   round,
				Server:  p.cfg.ID,
				Client:  id,
				TrueAgg: agg,
				History: p.history,
				RNG:     core.AttackRNG(p.cfg.Seed, p.cfg.ID, round, id, true),
			}
			out = p.cfg.Attack.Tamper(ctx)
		}
		wg.Add(1)
		go func(id int, conn *transport.Conn, vec []float64) {
			defer wg.Done()
			err := conn.Send(&transport.Message{
				Type:   transport.TypeGlobalModel,
				Round:  uint32(round),
				Sender: uint32(p.cfg.ID),
				Vec:    vec,
			})
			if err != nil {
				errs <- fmt.Errorf("node: PS %d round %d: send to client %d: %w", p.cfg.ID, round, id, err)
			}
		}(id, conn, out)
	}
	wg.Wait()
	close(errs)
	p.history = append(p.history, agg)
	return firstOf(errs)
}

func firstOf(errs <-chan error) error {
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ErrAborted reports a node shut down by its peer.
var ErrAborted = errors.New("node: aborted by peer")
