package node

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/attack"
	"fedms/internal/core"
	"fedms/internal/data"
	"fedms/internal/nn"
	"fedms/internal/randx"
	"fedms/internal/transport"
)

// makeLearners builds a deterministic federation fixture; calling it
// twice with the same seed yields independent but identical learners.
func makeLearners(t *testing.T, k int, seed uint64) []core.Learner {
	t.Helper()
	ds := data.Blobs(data.BlobsConfig{Samples: 800, Features: 12, NumClasses: 4, Seed: seed})
	train, test := ds.Split(0.8)
	parts := data.IIDPartition(train.Len(), k, seed)
	learners := make([]core.Learner, k)
	for i := 0; i < k; i++ {
		learners[i] = core.NewNNLearner(core.NNLearnerConfig{
			Net:       nn.NewLogistic(12, 4, seed),
			Train:     train.Subset(parts[i]),
			Test:      test,
			BatchSize: 16,
			Seed:      randx.Derive(seed, fmt.Sprintf("client/%d", i)),
		})
	}
	return learners
}

// runDistributed spins up P PS nodes and K client goroutines on
// localhost and runs the full protocol.
func runDistributed(t *testing.T, learners []core.Learner, p, rounds int,
	byzantine map[int]attack.Attack, filter aggregate.Rule, seed uint64) [][]float64 {
	t.Helper()
	k := len(learners)

	servers := make([]*PS, p)
	addrs := make([]string, p)
	for i := 0; i < p; i++ {
		ps, err := NewPS(PSConfig{
			ID:         i,
			ListenAddr: "127.0.0.1:0",
			Clients:    k,
			Rounds:     rounds,
			Attack:     byzantine[i],
			Seed:       seed,
			Timeout:    5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = ps
		addrs[i] = ps.Addr()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, p+k)
	for _, ps := range servers {
		wg.Add(1)
		go func(ps *PS) {
			defer wg.Done()
			if err := ps.Serve(); err != nil {
				errCh <- err
			}
		}(ps)
	}
	for id, l := range learners {
		wg.Add(1)
		go func(id int, l core.Learner) {
			defer wg.Done()
			_, err := RunClient(ClientConfig{
				ID:         id,
				Learner:    l,
				Servers:    addrs,
				Rounds:     rounds,
				LocalSteps: 2,
				Filter:     filter,
				Schedule:   nn.ConstantLR(0.3),
				Seed:       seed,
				Timeout:    5 * time.Second,
			})
			if err != nil {
				errCh <- err
			}
		}(id, l)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("distributed run failed: %v", err)
	}

	params := make([][]float64, k)
	for i, l := range learners {
		params[i] = l.Params()
	}
	return params
}

// runEngine runs the in-process engine on an identical fixture.
func runEngine(t *testing.T, learners []core.Learner, p, rounds, numByz int,
	byzIDs []int, atk attack.Attack, filter aggregate.Rule, seed uint64) [][]float64 {
	t.Helper()
	cfg := core.Config{
		Clients:      len(learners),
		Servers:      p,
		NumByzantine: numByz,
		ByzantineIDs: byzIDs,
		Rounds:       rounds,
		LocalSteps:   2,
		Attack:       atk,
		Filter:       filter,
		Schedule:     nn.ConstantLR(0.3),
		Seed:         seed,
		EvalEvery:    -1,
	}
	eng, err := core.NewEngine(cfg, learners)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	params := make([][]float64, len(learners))
	for i, l := range learners {
		params[i] = l.Params()
	}
	return params
}

func assertSameParams(t *testing.T, a, b [][]float64, context string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: client counts differ", context)
	}
	for k := range a {
		if len(a[k]) != len(b[k]) {
			t.Fatalf("%s: client %d dims differ", context, k)
		}
		for i := range a[k] {
			if a[k][i] != b[k][i] {
				t.Fatalf("%s: client %d param %d: %v vs %v", context, k, i, a[k][i], b[k][i])
			}
		}
	}
}

func TestDistributedMatchesEngineClean(t *testing.T) {
	const k, p, rounds, seed = 6, 3, 4, 31
	dist := runDistributed(t, makeLearners(t, k, seed), p, rounds, nil, aggregate.TrimmedMean{Beta: 0.2}, seed)
	eng := runEngine(t, makeLearners(t, k, seed), p, rounds, 0, nil, attack.None{}, aggregate.TrimmedMean{Beta: 0.2}, seed)
	assertSameParams(t, dist, eng, "clean run")
}

func TestDistributedMatchesEngineUnderNoiseAttack(t *testing.T) {
	const k, p, rounds, seed = 6, 5, 4, 32
	byzID := 2
	dist := runDistributed(t, makeLearners(t, k, seed), p, rounds,
		map[int]attack.Attack{byzID: attack.Noise{Sigma: 1}}, aggregate.TrimmedMean{Beta: 0.2}, seed)
	eng := runEngine(t, makeLearners(t, k, seed), p, rounds, 0, []int{byzID},
		attack.Noise{Sigma: 1}, aggregate.TrimmedMean{Beta: 0.2}, seed)
	assertSameParams(t, dist, eng, "noise attack")
}

func TestDistributedMatchesEngineEquivocatingAttack(t *testing.T) {
	const k, p, rounds, seed = 5, 5, 3, 33
	byzID := 0
	atk := attack.Random{PerClient: true}
	dist := runDistributed(t, makeLearners(t, k, seed), p, rounds,
		map[int]attack.Attack{byzID: atk}, aggregate.TrimmedMean{Beta: 0.2}, seed)
	eng := runEngine(t, makeLearners(t, k, seed), p, rounds, 0, []int{byzID},
		atk, aggregate.TrimmedMean{Beta: 0.2}, seed)
	assertSameParams(t, dist, eng, "equivocating attack")
}

func TestDistributedHistoryAttackParity(t *testing.T) {
	const k, p, rounds, seed = 5, 3, 5, 34
	byzID := 1
	atk := attack.Backward{}
	dist := runDistributed(t, makeLearners(t, k, seed), p, rounds,
		map[int]attack.Attack{byzID: atk}, aggregate.TrimmedMean{Beta: 1.0 / 3.0}, seed)
	eng := runEngine(t, makeLearners(t, k, seed), p, rounds, 0, []int{byzID},
		atk, aggregate.TrimmedMean{Beta: 1.0 / 3.0}, seed)
	assertSameParams(t, dist, eng, "backward attack")
}

func TestPSRejectsBadConfig(t *testing.T) {
	if _, err := NewPS(PSConfig{ID: 0, ListenAddr: "127.0.0.1:0", Clients: 0, Rounds: 1}); err == nil {
		t.Fatal("expected config error")
	}
	if _, err := NewPS(PSConfig{ID: 0, ListenAddr: "127.0.0.1:0", Clients: 1, Rounds: 0}); err == nil {
		t.Fatal("expected config error")
	}
}

func TestClientRejectsBadConfig(t *testing.T) {
	if _, err := RunClient(ClientConfig{}); err == nil {
		t.Fatal("expected config error")
	}
	learners := makeLearners(t, 1, 35)
	if _, err := RunClient(ClientConfig{
		ID: 0, Learner: learners[0], Filter: aggregate.Mean{}, Schedule: nn.ConstantLR(0.1),
	}); err == nil || !strings.Contains(err.Error(), "no servers") {
		t.Fatalf("expected no-servers error, got %v", err)
	}
}

func TestPSFailsWhenClientDisconnects(t *testing.T) {
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: 1, Rounds: 3,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ps.Serve() }()

	conn, err := transport.Dial(ps.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&transport.Message{Type: transport.TypeHello, Flag: 0, Vec: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	// Disconnect mid-protocol.
	conn.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("PS should fail when its only client disconnects")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PS hung after client disconnect")
	}
}

func TestPSTimesOutOnSilentClient(t *testing.T) {
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: 1, Rounds: 1,
		Timeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ps.Serve() }()

	conn, err := transport.Dial(ps.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(&transport.Message{Type: transport.TypeHello, Flag: 0, Vec: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	// Never send the round-0 upload: PS must time out, not hang.
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("PS should time out on a silent client")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PS hung on silent client")
	}
}

func TestClientFailsWhenPSDies(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		// Read the hello then slam the connection shut.
		buf := make([]byte, 1024)
		_, _ = c.Read(buf)
		c.Close()
		ln.Close()
	}()
	learners := makeLearners(t, 1, 36)
	_, err = RunClient(ClientConfig{
		ID:         0,
		Learner:    learners[0],
		Servers:    []string{ln.Addr().String()},
		Rounds:     2,
		LocalSteps: 1,
		Filter:     aggregate.Mean{},
		Schedule:   nn.ConstantLR(0.1),
		Timeout:    500 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("client should fail when its PS dies")
	}
}

func TestPSRejectsDuplicateClientIDs(t *testing.T) {
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: 2, Rounds: 1,
		Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ps.Serve() }()

	for i := 0; i < 2; i++ {
		conn, err := transport.Dial(ps.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := conn.Send(&transport.Message{Type: transport.TypeHello, Flag: 0, Vec: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "invalid client id") {
			t.Fatalf("expected duplicate-id error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PS hung on duplicate ids")
	}
}

func TestDistributedFullUpload(t *testing.T) {
	// Full upload with a single PS reduces to classical FedAvg; ensure
	// the path works end to end.
	const k, rounds, seed = 4, 3, 37
	learners := makeLearners(t, k, seed)
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: k, Rounds: rounds,
		Timeout: 5 * time.Second, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, k+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ps.Serve(); err != nil {
			errCh <- err
		}
	}()
	for id, l := range learners {
		wg.Add(1)
		go func(id int, l core.Learner) {
			defer wg.Done()
			_, err := RunClient(ClientConfig{
				ID: id, Learner: l, Servers: []string{ps.Addr()},
				Rounds: rounds, LocalSteps: 2, FullUpload: true,
				Filter: aggregate.Mean{}, Schedule: nn.ConstantLR(0.3),
				Seed: seed, Timeout: 5 * time.Second,
			})
			if err != nil {
				errCh <- err
			}
		}(id, l)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("full upload run failed: %v", err)
	}
	// All clients end with identical models (single PS, mean filter).
	p0 := learners[0].Params()
	for i := 1; i < k; i++ {
		pi := learners[i].Params()
		for j := range p0 {
			if p0[j] != pi[j] {
				t.Fatal("clients diverged under single-PS FedAvg")
			}
		}
	}
}

func TestClientStatsRecorded(t *testing.T) {
	const k, rounds, seed = 2, 4, 38
	learners := makeLearners(t, k, seed)
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: k, Rounds: rounds,
		Timeout: 5 * time.Second, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ps.Serve() }()

	var wg sync.WaitGroup
	statsCh := make(chan []ClientRoundStats, k)
	for id, l := range learners {
		wg.Add(1)
		go func(id int, l core.Learner) {
			defer wg.Done()
			st, err := RunClient(ClientConfig{
				ID: id, Learner: l, Servers: []string{ps.Addr()},
				Rounds: rounds, LocalSteps: 1,
				Filter: aggregate.Mean{}, Schedule: nn.ConstantLR(0.2),
				Seed: seed, Timeout: 5 * time.Second, EvalEvery: 2,
			})
			if err != nil {
				t.Errorf("client %d: %v", id, err)
				return
			}
			statsCh <- st
		}(id, l)
	}
	wg.Wait()
	close(statsCh)
	for st := range statsCh {
		if len(st) != rounds {
			t.Fatalf("stats rounds = %d, want %d", len(st), rounds)
		}
		if !st[1].Evaluated || st[0].Evaluated {
			t.Fatalf("EvalEvery=2 evaluation pattern wrong: %+v", st)
		}
		if st[0].UploadedTo != 0 {
			t.Fatalf("single PS: UploadedTo = %d", st[0].UploadedTo)
		}
	}
}

func TestPSStatsAccounting(t *testing.T) {
	const k, rounds, seed = 3, 4, 44
	learners := makeLearners(t, k, seed)
	ps, err := NewPS(PSConfig{
		ID: 0, ListenAddr: "127.0.0.1:0", Clients: k, Rounds: rounds,
		Seed: seed, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ps.Serve() }()

	var wg sync.WaitGroup
	for id, l := range learners {
		wg.Add(1)
		go func(id int, l core.Learner) {
			defer wg.Done()
			_, err := RunClient(ClientConfig{
				ID: id, Learner: l, Servers: []string{ps.Addr()},
				Rounds: rounds, LocalSteps: 1, FullUpload: true,
				Filter: aggregate.Mean{}, Schedule: nn.ConstantLR(0.1),
				Seed: seed, Timeout: 5 * time.Second,
			})
			if err != nil {
				t.Errorf("client %d: %v", id, err)
			}
		}(id, l)
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := ps.Stats()
	dim := learners[0].NumParams()
	if st.RoundsServed != rounds {
		t.Fatalf("RoundsServed = %d, want %d", st.RoundsServed, rounds)
	}
	if st.UploadsReceived != k*rounds {
		t.Fatalf("UploadsReceived = %d, want %d", st.UploadsReceived, k*rounds)
	}
	if st.FloatsIn != k*rounds*dim || st.FloatsOut != k*rounds*dim {
		t.Fatalf("floats in/out = %d/%d, want %d", st.FloatsIn, st.FloatsOut, k*rounds*dim)
	}
}
