package node

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/attack"
	"fedms/internal/compress"
	"fedms/internal/core"
	"fedms/internal/nn"
	"fedms/internal/obs"
	"fedms/internal/sched"
	"fedms/internal/transport"
)

// maxDialBackoff caps the exponential dial backoff.
const maxDialBackoff = time.Second

// ClientConfig configures one federated client node.
type ClientConfig struct {
	// ID is the client index in [0, K).
	ID int
	// Learner is the client's local trainable state.
	Learner core.Learner
	// Servers lists PS addresses indexed by server id.
	Servers []string
	// Rounds and LocalSteps mirror the core.Config fields T and E.
	Rounds     int
	LocalSteps int
	// Clients is K, the total client count of the federation — the
	// population Participation samples from. Required when
	// Participation ∈ (0, 1); otherwise unused.
	Clients int
	// Participation mirrors core.Config.Participation: the fraction of
	// clients active per round, sampled without replacement from the
	// shared seed. Each round this client checks its membership in
	// core.ActiveClients(Seed, round, Clients, Participation) — the
	// exact index set the in-process engine samples — and when inactive
	// skips local training and sends empty skip frames to every PS
	// (preserving the K-frame barrier) while still receiving and
	// filtering the global models, as in the engine. 0 or 1 means full
	// participation.
	Participation float64
	// FullUpload sends the model to every PS instead of one random PS.
	FullUpload bool
	// UploadAttack, when non-nil, makes this client Byzantine: it
	// trains honestly but uploads the tampered model (the two-sided
	// threat model; see core.Config.ClientAttack).
	UploadAttack attack.UploadAttack
	// Filter is the client-side defence (TrimmedMean for Fed-MS).
	Filter aggregate.Rule
	// LossOracle scores a candidate model on a holdout split shared
	// with the servers; when set and Filter implements
	// aggregate.LossRule, the model filter routes through it (see
	// core.Config.LossOracle for the contract). Evals are counted in
	// Obs (fedms_client_oracle_evals_total).
	LossOracle aggregate.LossEval
	// Schedule is the learning-rate schedule.
	Schedule nn.Schedule
	// Seed is the shared experiment seed (drives the upload choice).
	Seed uint64
	// Key, when non-empty, enables per-frame HMAC authentication; it
	// must match the servers' key.
	Key []byte
	// Timeout bounds each frame send/receive.
	Timeout time.Duration
	// EvalEvery, if positive, evaluates the learner every that many
	// rounds and records the result in the returned stats.
	EvalEvery int
	// MinModels enables graceful degradation: a round succeeds when at
	// least MinModels global models arrive, and a short round (P' < P)
	// falls back to trimming over the survivors with the same per-side
	// trim count the full filter would use — the paper's β = B/P
	// semantics, so up to B Byzantine models are still discarded. Keep
	// it ≥ 2B+1 or the degraded filter loses its guarantee. Zero is the
	// strict protocol: all P models required, any fault fatal.
	MinModels int
	// Faults, when non-nil, injects deterministic transport faults into
	// this client's upload links (labelled "c<ID>->ps<i>"). The hello
	// handshake is never faulted.
	Faults *transport.FaultInjector
	// Redial, in tolerant mode, re-dials dead parameter servers at the
	// start of each round so a crashed-and-restarted PS rejoins the
	// federation.
	Redial bool
	// DialAttempts bounds connection attempts per server (default 3),
	// spaced by capped exponential backoff.
	DialAttempts int
	// DialBackoff is the initial retry backoff (default 50ms, doubled
	// per attempt, capped at 1s).
	DialBackoff time.Duration
	// OnRound, when non-nil, observes every completed round: the global
	// models that actually arrived (keyed by PS id) and the filtered
	// result. The chaos tests use it to check the filter output against
	// benign coordinate bounds; callers must not mutate the arguments.
	OnRound func(round int, received map[int][]float64, filtered []float64)
	// Codec compresses this client's uploads into v2 codec frames (nil
	// or the dense codec keeps the pre-codec v1 dense frames). Stateful
	// codecs — error feedback — keep their residual in the instance, so
	// it persists across the client's rounds; instances must not be
	// shared between clients.
	Codec compress.Codec
	// AcceptEncodedDownlink advertises v2 decoding support in the hello
	// handshake, letting a PS configured with a downlink codec compress
	// this client's global-model frames. Off by default: the downlink
	// stays dense and the trimmed-mean filter sees exact aggregates.
	AcceptEncodedDownlink bool

	// Async switches the client to the windowed lifecycle: each round's
	// model draws a deterministic virtual arrival delay (see
	// sched.ArrivalDelay); a delayed model is parked in a local backlog
	// and sent later as a stale-tagged frame while the round's marker to
	// its PS degrades to a skip. Window and Staleness must match the
	// servers' PSConfig.
	Async bool
	// Window is the servers' aggregation window (defaults like
	// PSConfig.Window); it sets the virtual-delay quantum.
	Window time.Duration
	// Staleness is the servers' admission bound S, for observability
	// only — the client sends every due backlog entry and lets the PS
	// rule on admission, exactly as the engine accounts drops.
	Staleness int
	// LatencyScale overrides the virtual upload-latency scale (0 means
	// sched.DefaultLatencyScale). Tests use a scale much larger than
	// the window to provoke stale traffic without shrinking the real
	// deadline the federation runs under.
	LatencyScale time.Duration

	// Logger, when non-nil, records one structured line per round (the
	// engine's slog pattern adopted by the distributed runtime).
	Logger *slog.Logger
	// Obs, when non-nil, registers this client's runtime counters and
	// the transport counters of its connections (fedms_client_* and
	// fedms_transport_*, labelled by node). Observation never perturbs
	// the protocol: seeded runs are bit-identical with or without it
	// (see TestObsDeterminism*).
	Obs *obs.Registry
	// TraceSink, when non-nil, receives one obs.Event per completed
	// round ("client_round") with participation and wire totals.
	TraceSink *obs.Trace
}

// ClientRoundStats records one round as seen by a client node.
type ClientRoundStats struct {
	Round     int
	TrainLoss float64
	TestLoss  float64
	TestAcc   float64
	Evaluated bool
	// UploadedTo is the PS that received this client's model (-1 for
	// full upload).
	UploadedTo int
	// Active reports whether this client was sampled into the round
	// (always true under full participation). An inactive round trains
	// nothing and uploads skip frames only.
	Active bool
	// ModelsReceived counts the global models that arrived this round
	// (P when nothing was lost).
	ModelsReceived int
	// Degraded reports that fewer than P models arrived and the filter
	// fell back to trimming over the survivors.
	Degraded bool
	// UploadBytes counts the model payload bytes this client put on the
	// wire this round (dense models count 8 bytes per coordinate).
	UploadBytes int
	// DownloadBytes counts the model payload bytes received this round.
	DownloadBytes int
	// StaleUploads counts backlog models delivered stale-tagged this
	// round; DroppedUploads counts due backlog models abandoned because
	// every target server was dead; BacklogDepth is the backlog size
	// after this round's sends. All zero in sync mode.
	StaleUploads   int
	DroppedUploads int
	BacklogDepth   int
}

// backlogged is one virtually delayed upload waiting in the client's
// async backlog: the payload bytes frozen at its origin round, the
// round it comes due, and its target PS (-1 broadcasts to all, the
// full-upload mode).
type backlogged struct {
	origin, due, to int
	enc             compress.Encoding
	data            []byte
}

// dialPS connects to server i with capped exponential backoff, performs
// the hello handshake, and attaches the fault link and wire counters.
func dialPS(cfg *ClientConfig, i int, addr string, hello []float64, tm *transport.Metrics) (*transport.Conn, error) {
	backoff := cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt < cfg.DialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > maxDialBackoff {
				backoff = maxDialBackoff
			}
		}
		conn, err := transport.Dial(addr, cfg.Timeout)
		if err != nil {
			lastErr = err
			continue
		}
		conn.SetKey(cfg.Key)
		conn.SetMetrics(tm)
		// Two-frame hello: the first frame stays under the server's
		// hello-phase body cap (no model, just the codec advertisement
		// and — when a key is shared — the connect token that lets a
		// restarted PS re-admit this client statelessly), and the model
		// seed follows as a second TypeHello frame the server reads
		// only after admitting the introduction.
		info := transport.HelloInfo{CodecV2: cfg.AcceptEncodedDownlink}
		if len(cfg.Key) > 0 {
			info.Token = transport.ConnectToken(cfg.Key, cfg.Seed, cfg.ID)
		}
		msg := &transport.Message{
			Type:   transport.TypeHello,
			Sender: uint32(cfg.ID),
			Flag:   uint32(cfg.ID) | transport.HelloSeedFlag,
			Text:   info.Text(),
		}
		seedFrame := &transport.Message{
			Type:   transport.TypeHello,
			Sender: uint32(cfg.ID),
			Flag:   uint32(cfg.ID),
			Vec:    hello,
		}
		if err := conn.Send(msg); err != nil {
			_ = conn.Close()
			lastErr = err
			continue
		}
		if err := conn.Send(seedFrame); err != nil {
			_ = conn.Close()
			lastErr = err
			continue
		}
		if cfg.Faults != nil {
			conn.SetFaults(cfg.Faults.Link(fmt.Sprintf("c%d->ps%d", cfg.ID, i)))
		}
		return conn, nil
	}
	return nil, lastErr
}

// recvResult is one PS's contribution to the dissemination barrier.
type recvResult struct {
	model   bool // a global model arrived; pl holds its payload view
	pl      compress.Payload
	bytes   int // model payload bytes on the wire
	missing bool
	dead    bool
	err     error
}

// recvModel reads PS i's round-r global model, skipping corrupt and
// stale frames in tolerant mode. When this round's model was lost and
// the PS has already broadcast a later round, the future frame is
// parked in *pending (consumed first on the next call) instead of
// condemning a healthy connection.
func recvModel(conn *transport.Conn, pending **transport.Message, psID, round int, tolerant bool, skipped *obs.Counter) recvResult {
	for tries := 0; tries < maxBadFrames; tries++ {
		var m *transport.Message
		var err error
		if *pending != nil {
			m, *pending = *pending, nil
		} else {
			m, err = conn.Recv()
		}
		if err != nil {
			if tolerant {
				if errors.Is(err, transport.ErrBadChecksum) || errors.Is(err, transport.ErrBadMAC) ||
					errors.Is(err, transport.ErrBadPayload) {
					skipped.Inc()
					continue
				}
				if isTimeout(err) {
					return recvResult{missing: true, err: err}
				}
			}
			return recvResult{dead: true, err: err}
		}
		if tolerant && m.Type == transport.TypeGlobalModel {
			if int(m.Round) < round {
				// A duplicated or delayed model from an earlier round.
				skipped.Inc()
				continue
			}
			if int(m.Round) > round {
				// This round's model was dropped and the PS moved on.
				// The frame we hold is next round's model: keep it.
				*pending = m
				return recvResult{missing: true,
					err: fmt.Errorf("PS %d already broadcast round %d", psID, m.Round)}
			}
		}
		if m.Type != transport.TypeGlobalModel || int(m.Round) != round {
			return recvResult{dead: true,
				err: fmt.Errorf("unexpected %s (round %d) from PS %d", m.Type, m.Round, psID)}
		}
		pl, err := m.ModelPayload()
		if err != nil {
			// A checksummed frame with a malformed codec payload can only
			// come from a Byzantine PS; treat it like a corrupt frame.
			if tolerant {
				skipped.Inc()
				continue
			}
			return recvResult{dead: true, err: err}
		}
		return recvResult{model: true, pl: pl, bytes: m.ModelWireBytes()}
	}
	return recvResult{missing: true, err: errors.New("too many unreadable frames")}
}

// degradedTrim rebuilds the filter for a round where only got < total
// models arrived. A TrimmedMean keeps its absolute per-side trim count
// from the full federation (⌈β·P⌉ = B), so the degraded round still
// discards up to B Byzantine survivors — the paper's filter semantics
// under partial participation. Other rules apply unchanged.
func degradedTrim(f aggregate.Rule, total, got int) (aggregate.Rule, error) {
	if nf, ok := f.(aggregate.NoFuse); ok {
		// See through the fused-path escape hatch, then restore it: the
		// degraded round must trim like the inner rule while still
		// aggregating on the densify-first fallback.
		inner, err := degradedTrim(nf.Rule, total, got)
		if err != nil {
			return nil, err
		}
		return aggregate.NoFuse{Rule: inner}, nil
	}
	tm, ok := f.(aggregate.TrimmedMean)
	if !ok {
		return f, nil
	}
	m := tm.TrimCount(total)
	if m == 0 {
		return tm, nil
	}
	if 2*m >= got {
		return nil, fmt.Errorf("%d models cannot absorb a trim of %d per side", got, m)
	}
	return aggregate.TrimmedMean{Trim: m, Workers: tm.Workers}, nil
}

// RunClient executes the client side of the protocol to completion and
// returns per-round statistics.
func RunClient(cfg ClientConfig) ([]ClientRoundStats, error) {
	if cfg.Learner == nil || cfg.Filter == nil || cfg.Schedule == nil {
		return nil, fmt.Errorf("node: client %d missing learner, filter or schedule", cfg.ID)
	}
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("node: client %d has no servers", cfg.ID)
	}
	p := len(cfg.Servers)
	if cfg.MinModels > p {
		return nil, fmt.Errorf("node: client %d MinModels %d exceeds P=%d", cfg.ID, cfg.MinModels, p)
	}
	if cfg.Participation < 0 || cfg.Participation > 1 {
		return nil, fmt.Errorf("node: client %d Participation must be in [0, 1], got %v", cfg.ID, cfg.Participation)
	}
	sampled := cfg.Participation > 0 && cfg.Participation < 1
	if sampled && cfg.Clients <= cfg.ID {
		return nil, fmt.Errorf("node: client %d needs Clients > ID to sample participation, got %d", cfg.ID, cfg.Clients)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 3
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 50 * time.Millisecond
	}
	if cfg.Async {
		if cfg.Window < 0 {
			return nil, fmt.Errorf("node: client %d Window must be positive, got %v", cfg.ID, cfg.Window)
		}
		if cfg.Window == 0 {
			cfg.Window = sched.DefaultLatencyScale / 4
		}
		if cfg.Staleness < 0 {
			return nil, fmt.Errorf("node: client %d Staleness must be non-negative, got %d", cfg.ID, cfg.Staleness)
		}
		if cfg.LatencyScale < 0 {
			return nil, fmt.Errorf("node: client %d LatencyScale must be non-negative, got %v", cfg.ID, cfg.LatencyScale)
		}
		if cfg.LatencyScale == 0 {
			cfg.LatencyScale = sched.DefaultLatencyScale
		}
	} else if cfg.Window != 0 || cfg.Staleness != 0 || cfg.LatencyScale != 0 {
		return nil, fmt.Errorf("node: client %d Window/Staleness/LatencyScale require Async mode", cfg.ID)
	}
	tolerant := cfg.MinModels > 0
	if cfg.Codec != nil && cfg.Codec.Name() == "dense" {
		// The identity codec is the nil fast path: uploads stay v1 dense
		// frames, bit-identical to the pre-codec wire.
		cfg.Codec = nil
	}
	// encBuf is reused across rounds for the encoded upload payload.
	var encBuf []byte

	cm := newClientMetrics(cfg.Obs, cfg.ID, cfg.Filter.Name())
	tm := transport.NewMetrics(cfg.Obs, fmt.Sprintf("c%d", cfg.ID))
	// obsOn gates the wall-clock measurement of the dissemination wait;
	// with observability fully disabled the protocol path never reads
	// the clock.
	obsOn := cfg.Obs != nil || cfg.TraceSink != nil || cfg.Logger != nil
	nodeName := fmt.Sprintf("c%d", cfg.ID)

	conns := make([]*transport.Conn, p)
	// pendings[i] parks a future-round model read early from PS i (see
	// recvModel); it never outlives the connection it was read from.
	pendings := make([]*transport.Message, p)
	defer func() {
		for _, c := range conns {
			if c != nil {
				_ = c.Close()
			}
		}
	}()
	markDead := func(i int) {
		if conns[i] != nil {
			_ = conns[i].Close()
			conns[i] = nil
		}
		pendings[i] = nil
	}

	w0 := cfg.Learner.Params()
	liveCount := 0
	for i, addr := range cfg.Servers {
		conn, err := dialPS(&cfg, i, addr, w0, tm)
		if err != nil {
			if !tolerant {
				return nil, fmt.Errorf("node: client %d: %w", cfg.ID, err)
			}
			continue
		}
		conns[i] = conn
		liveCount++
	}
	if tolerant && liveCount < cfg.MinModels {
		return nil, fmt.Errorf("node: client %d: only %d of %d servers reachable (need ≥ %d)",
			cfg.ID, liveCount, p, cfg.MinModels)
	}

	stats := make([]ClientRoundStats, 0, cfg.Rounds)
	// backlog holds this client's virtually delayed uploads, in origin
	// order (async mode only; see ClientConfig.Async).
	var backlog []backlogged
	for round := 0; round < cfg.Rounds; round++ {
		st := ClientRoundStats{Round: round, UploadedTo: -1}

		// Rejoin restarted servers before the round barrier forms.
		if tolerant && cfg.Redial && round > 0 {
			for i, conn := range conns {
				if conn != nil {
					continue
				}
				cm.redialAttempts.Inc()
				if c, err := dialPS(&cfg, i, cfg.Servers[i], cfg.Learner.Params(), tm); err == nil {
					conns[i] = c
					pendings[i] = nil
					cm.redialsOK.Inc()
					if cfg.Logger != nil {
						cfg.Logger.Info("client redial", "client", cfg.ID, "round", round, "ps", i)
					}
				}
			}
		}

		// Partial participation: an inactive round skips training and
		// uploads skip frames only — exactly the engine's semantics,
		// over the identical sampled index set (the shared seed makes
		// ActiveClients a pure function both runtimes agree on).
		st.Active = true
		if sampled {
			st.Active = false
			for _, id := range core.ActiveClients(cfg.Seed, round, cfg.Clients, cfg.Participation) {
				if id == cfg.ID {
					st.Active = true
					break
				}
			}
		}

		var params []float64
		var uploadEnc compress.Encoding
		choice := -1
		if st.Active {
			var roundStart []float64
			if cfg.UploadAttack != nil {
				roundStart = cfg.Learner.Params()
			}

			// Local training stage.
			st.TrainLoss = cfg.Learner.LocalTrain(cfg.LocalSteps, round*cfg.LocalSteps, cfg.Schedule)
			params = cfg.Learner.Params()

			// A Byzantine client lies in what it sends, not in how it
			// trains.
			if cfg.UploadAttack != nil {
				params = cfg.UploadAttack.TamperUpload(&attack.UploadContext{
					Round:  round,
					Client: cfg.ID,
					Params: params,
					Global: roundStart,
					RNG:    core.UploadAttackRNG(cfg.Seed, round, cfg.ID),
				})
			}

			// The codec runs once per round — full upload sends the same
			// payload to every PS, so error-feedback state advances
			// exactly once either way; an inactive round advances it not
			// at all (the engine encodes only active clients).
			if cfg.Codec != nil {
				uploadEnc, encBuf = cfg.Codec.AppendEncode(encBuf[:0], params)
			}
			if !cfg.FullUpload {
				choice = core.SparseUploadChoice(cfg.Seed, round, cfg.ID, p)
				st.UploadedTo = choice
			}
		}

		// Async virtual straggling: a model whose seeded arrival delay is
		// positive misses its own round's window. It is frozen into the
		// backlog (payload-encoded, so the staleness tag can ride a v2
		// frame later) and the round's marker degrades to a skip; the
		// codec's error-feedback state has already advanced, exactly as
		// in a timely round.
		modelNow := true
		if cfg.Async && st.Active {
			if delay := sched.ArrivalDelay(cfg.Seed, round, cfg.ID, cfg.Window, cfg.LatencyScale); delay > 0 {
				modelNow = false
				b := backlogged{origin: round, due: round + delay, to: choice}
				if cfg.Codec != nil {
					b.enc, b.data = uploadEnc, append([]byte(nil), encBuf...)
				} else {
					b.enc, b.data = compress.EncDense, denseWire(params)
				}
				backlog = append(backlog, b)
			}
		}

		// Deliver backlog entries that have come due, before this round's
		// markers so each PS reads stale frames first and the marker still
		// closes its connection's round. The PS rules on admission (the
		// staleness bound lives there); a due entry whose every target
		// died is abandoned.
		if cfg.Async && len(backlog) > 0 {
			kept := backlog[:0]
			for _, b := range backlog {
				if b.due > round {
					kept = append(kept, b)
					continue
				}
				stale := round - b.origin
				if stale > 255 {
					stale = 255
				}
				sent := false
				for i, conn := range conns {
					if conn == nil || (b.to >= 0 && i != b.to) {
						continue
					}
					msg := &transport.Message{
						Type:    transport.TypeUpload,
						Round:   uint32(b.origin),
						Sender:  uint32(cfg.ID),
						Flag:    1,
						Stale:   uint8(stale),
						Enc:     b.enc,
						Payload: b.data,
					}
					if err := conn.Send(msg); err != nil {
						if !tolerant {
							return stats, fmt.Errorf("node: client %d round %d stale upload to PS %d: %w", cfg.ID, round, i, err)
						}
						markDead(i)
						continue
					}
					sent = true
					st.UploadBytes += msg.ModelWireBytes()
					st.StaleUploads++
					cm.staleSent.Inc()
				}
				if !sent {
					st.DroppedUploads++
					cm.uploadsDropped.Inc()
				}
			}
			backlog = kept
		}

		// Model aggregation stage: one real upload (sparse) or P (full);
		// empty skip frames complete the PS-side barrier.
		for i, conn := range conns {
			if conn == nil {
				continue
			}
			msg := &transport.Message{
				Type:   transport.TypeUpload,
				Round:  uint32(round),
				Sender: uint32(cfg.ID),
			}
			if st.Active && modelNow && (cfg.FullUpload || i == choice) {
				msg.Flag = 1
				if cfg.Codec != nil {
					msg.Enc, msg.Payload = uploadEnc, encBuf
				} else {
					msg.Vec = params
				}
			}
			if err := conn.Send(msg); err != nil {
				if !tolerant {
					return stats, fmt.Errorf("node: client %d round %d upload to PS %d: %w", cfg.ID, round, i, err)
				}
				markDead(i)
				continue
			}
			if msg.Flag == 1 {
				st.UploadBytes += msg.ModelWireBytes()
			}
		}

		// Model dissemination stage: receive one global model per live
		// PS, in parallel so a slow or silent server costs one timeout,
		// not P of them.
		results := make([]recvResult, p)
		var recvStart time.Time
		if obsOn {
			recvStart = time.Now()
		}
		var wg sync.WaitGroup
		for i, conn := range conns {
			if conn == nil {
				continue
			}
			wg.Add(1)
			go func(i int, conn *transport.Conn) {
				defer wg.Done()
				results[i] = recvModel(conn, &pendings[i], i, round, tolerant, cm.framesSkipped)
			}(i, conn)
		}
		wg.Wait()
		var recvWait time.Duration
		if obsOn {
			recvWait = time.Since(recvStart)
		}

		received := make(map[int]compress.Payload, p)
		for i := range conns {
			if conns[i] == nil {
				continue
			}
			r := results[i]
			switch {
			case r.dead || (r.missing && !tolerant):
				if !tolerant {
					return stats, fmt.Errorf("node: client %d round %d recv from PS %d: %w", cfg.ID, round, i, r.err)
				}
				if r.dead {
					markDead(i)
				}
			case r.missing:
				// Keep the connection: the frame was lost, not the peer.
			default:
				received[i] = r.pl
				st.DownloadBytes += r.bytes
			}
		}

		got := len(received)
		if got < p && !tolerant {
			return stats, fmt.Errorf("node: client %d round %d: only %d of %d global models", cfg.ID, round, got, p)
		}
		if tolerant && got < cfg.MinModels {
			return stats, fmt.Errorf("node: client %d round %d: only %d of %d global models (need ≥ %d)",
				cfg.ID, round, got, p, cfg.MinModels)
		}

		// Model filter: trmean over the P' ≤ P received models, in
		// ascending server order (bitwise engine parity when P' = P).
		// The filter consumes the payload views directly — sparse or
		// quantized downlinks are never densified per model; the fused
		// kernels gather coordinates out of the views (bit-identical to
		// decode-then-aggregate, see aggregate.PayloadRule).
		models := make([]compress.Payload, 0, got)
		for i := 0; i < p; i++ {
			if pl, ok := received[i]; ok {
				models = append(models, pl)
			}
		}
		rule := cfg.Filter
		if got < p {
			var err error
			if rule, err = degradedTrim(cfg.Filter, p, got); err != nil {
				return stats, fmt.Errorf("node: client %d round %d: %w", cfg.ID, round, err)
			}
		}
		filtered, filterFused, oracleEvals := aggregate.AggregatePayloadsWithOracle(rule, models, cfg.LossOracle)
		cfg.Learner.SetParams(filtered)
		st.ModelsReceived = got
		st.Degraded = got < p
		if cfg.OnRound != nil {
			// Observers see dense vectors; densify only when someone is
			// actually watching.
			dense := make(map[int][]float64, got)
			for i, pl := range received {
				dense[i] = pl.DenseView()
			}
			cfg.OnRound(round, dense, filtered)
		}

		if cfg.EvalEvery > 0 && (round%cfg.EvalEvery == cfg.EvalEvery-1 || round == cfg.Rounds-1) {
			st.TestLoss, st.TestAcc = cfg.Learner.Evaluate()
			st.Evaluated = true
		}
		if cfg.Async {
			st.BacklogDepth = len(backlog)
			cm.backlogDepth.Set(int64(len(backlog)))
		}
		stats = append(stats, st)

		cm.rounds.Inc()
		cm.modelsRecv.Add(int64(got))
		cm.modelsMissed.Add(int64(p - got))
		if st.Degraded {
			cm.degraded.Inc()
		}
		cm.uploadBytes.Add(int64(st.UploadBytes))
		cm.downloadBytes.Add(int64(st.DownloadBytes))
		if filterFused {
			cm.filterFused.Inc()
		} else {
			cm.filterFallback.Inc()
		}
		cm.filterDecodeBytes.Add(int64(st.DownloadBytes))
		cm.oracleEvals.Add(int64(oracleEvals))
		cm.recvWait.ObserveDuration(recvWait)
		if cfg.TraceSink != nil {
			degraded := 0.0
			if st.Degraded {
				degraded = 1
			}
			fields := map[string]float64{
				"models_received": float64(got),
				"degraded":        degraded,
				"uploaded_to":     float64(st.UploadedTo),
				"train_loss":      st.TrainLoss,
				"upload_bytes":    float64(st.UploadBytes),
				"download_bytes":  float64(st.DownloadBytes),
				"recv_wait_ms":    recvWait.Seconds() * 1e3,
			}
			if cfg.Async {
				fields["stale_uploads"] = float64(st.StaleUploads)
				fields["dropped_uploads"] = float64(st.DroppedUploads)
				fields["backlog_depth"] = float64(st.BacklogDepth)
			}
			cfg.TraceSink.Emit(obs.Event{
				Round:  round,
				Node:   nodeName,
				Name:   "client_round",
				Fields: fields,
			})
		}
		if cfg.Logger != nil {
			attrs := []any{
				"client", cfg.ID, "round", round,
				"models", got, "degraded", st.Degraded, "uploaded_to", st.UploadedTo,
				"train_loss", st.TrainLoss,
				"upload_bytes", st.UploadBytes, "download_bytes", st.DownloadBytes,
				"recv_wait_ms", recvWait.Seconds() * 1e3,
			}
			if cfg.Async {
				attrs = append(attrs,
					"stale_uploads", st.StaleUploads,
					"dropped_uploads", st.DroppedUploads,
					"backlog_depth", st.BacklogDepth)
			}
			cfg.Logger.Info("client round", attrs...)
		}
	}
	return stats, nil
}
