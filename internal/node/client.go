package node

import (
	"fmt"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/attack"
	"fedms/internal/core"
	"fedms/internal/nn"
	"fedms/internal/transport"
)

// ClientConfig configures one federated client node.
type ClientConfig struct {
	// ID is the client index in [0, K).
	ID int
	// Learner is the client's local trainable state.
	Learner core.Learner
	// Servers lists PS addresses indexed by server id.
	Servers []string
	// Rounds and LocalSteps mirror the core.Config fields T and E.
	Rounds     int
	LocalSteps int
	// FullUpload sends the model to every PS instead of one random PS.
	FullUpload bool
	// UploadAttack, when non-nil, makes this client Byzantine: it
	// trains honestly but uploads the tampered model (the two-sided
	// threat model; see core.Config.ClientAttack).
	UploadAttack attack.UploadAttack
	// Filter is the client-side defence (TrimmedMean for Fed-MS).
	Filter aggregate.Rule
	// Schedule is the learning-rate schedule.
	Schedule nn.Schedule
	// Seed is the shared experiment seed (drives the upload choice).
	Seed uint64
	// Key, when non-empty, enables per-frame HMAC authentication; it
	// must match the servers' key.
	Key []byte
	// Timeout bounds each frame send/receive.
	Timeout time.Duration
	// EvalEvery, if positive, evaluates the learner every that many
	// rounds and records the result in the returned stats.
	EvalEvery int
}

// ClientRoundStats records one round as seen by a client node.
type ClientRoundStats struct {
	Round     int
	TrainLoss float64
	TestLoss  float64
	TestAcc   float64
	Evaluated bool
	// UploadedTo is the PS that received this client's model (-1 for
	// full upload).
	UploadedTo int
}

// RunClient executes the client side of the protocol to completion and
// returns per-round statistics.
func RunClient(cfg ClientConfig) ([]ClientRoundStats, error) {
	if cfg.Learner == nil || cfg.Filter == nil || cfg.Schedule == nil {
		return nil, fmt.Errorf("node: client %d missing learner, filter or schedule", cfg.ID)
	}
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("node: client %d has no servers", cfg.ID)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}

	p := len(cfg.Servers)
	conns := make([]*transport.Conn, p)
	defer func() {
		for _, c := range conns {
			if c != nil {
				_ = c.Close()
			}
		}
	}()
	w0 := cfg.Learner.Params()
	for i, addr := range cfg.Servers {
		conn, err := transport.Dial(addr, cfg.Timeout)
		if err != nil {
			return nil, fmt.Errorf("node: client %d: %w", cfg.ID, err)
		}
		conn.SetKey(cfg.Key)
		conns[i] = conn
		hello := &transport.Message{
			Type:   transport.TypeHello,
			Sender: uint32(cfg.ID),
			Flag:   uint32(cfg.ID),
			Vec:    w0,
		}
		if err := conn.Send(hello); err != nil {
			return nil, fmt.Errorf("node: client %d hello to PS %d: %w", cfg.ID, i, err)
		}
	}

	stats := make([]ClientRoundStats, 0, cfg.Rounds)
	for round := 0; round < cfg.Rounds; round++ {
		st := ClientRoundStats{Round: round, UploadedTo: -1}

		var roundStart []float64
		if cfg.UploadAttack != nil {
			roundStart = cfg.Learner.Params()
		}

		// Local training stage.
		st.TrainLoss = cfg.Learner.LocalTrain(cfg.LocalSteps, round*cfg.LocalSteps, cfg.Schedule)
		params := cfg.Learner.Params()

		// A Byzantine client lies in what it sends, not in how it
		// trains.
		if cfg.UploadAttack != nil {
			params = cfg.UploadAttack.TamperUpload(&attack.UploadContext{
				Round:  round,
				Client: cfg.ID,
				Params: params,
				Global: roundStart,
				RNG:    core.UploadAttackRNG(cfg.Seed, round, cfg.ID),
			})
		}

		// Model aggregation stage: one real upload (sparse) or P (full);
		// empty skip frames complete the PS-side barrier.
		choice := -1
		if !cfg.FullUpload {
			choice = core.SparseUploadChoice(cfg.Seed, round, cfg.ID, p)
			st.UploadedTo = choice
		}
		for i, conn := range conns {
			msg := &transport.Message{
				Type:   transport.TypeUpload,
				Round:  uint32(round),
				Sender: uint32(cfg.ID),
			}
			if cfg.FullUpload || i == choice {
				msg.Flag = 1
				msg.Vec = params
			}
			if err := conn.Send(msg); err != nil {
				return stats, fmt.Errorf("node: client %d round %d upload to PS %d: %w", cfg.ID, round, i, err)
			}
		}

		// Model dissemination stage: receive one global model per PS.
		received := make([][]float64, p)
		for i, conn := range conns {
			m, err := conn.Recv()
			if err != nil {
				return stats, fmt.Errorf("node: client %d round %d recv from PS %d: %w", cfg.ID, round, i, err)
			}
			if m.Type != transport.TypeGlobalModel || int(m.Round) != round {
				return stats, fmt.Errorf("node: client %d round %d: unexpected %s (round %d) from PS %d", cfg.ID, round, m.Type, m.Round, i)
			}
			received[m.Sender] = m.Vec
		}
		for i, vec := range received {
			if vec == nil {
				return stats, fmt.Errorf("node: client %d round %d: no model from PS %d", cfg.ID, round, i)
			}
		}

		// Model filter: trmean over the P received models.
		cfg.Learner.SetParams(cfg.Filter.Aggregate(received))

		if cfg.EvalEvery > 0 && (round%cfg.EvalEvery == cfg.EvalEvery-1 || round == cfg.Rounds-1) {
			st.TestLoss, st.TestAcc = cfg.Learner.Evaluate()
			st.Evaluated = true
		}
		stats = append(stats, st)
	}
	return stats, nil
}
