// Package fedms is the public API of this Fed-MS implementation — a
// reproduction of "Fed-MS: Fault Tolerant Federated Edge Learning with
// Multiple Byzantine Servers" (ICDCS 2024).
//
// Fed-MS trains a model across K clients and P edge parameter servers
// of which B < P/2 may be Byzantine. Clients upload sparsely (one
// uniformly random PS per round), every PS broadcasts its aggregate,
// and each client recovers a feasible global model with a
// coordinate-wise trimmed mean (trim rate β = B/P).
//
// The package wires together the internal substrates (datasets,
// models, aggregation rules, attacks, and the round engine) behind a
// single Config/Run entry point:
//
//	res, err := fedms.Run(fedms.Config{
//	    Clients: 50, Servers: 10, NumByzantine: 2,
//	    Rounds: 60, LocalSteps: 3, TrimBeta: 0.2,
//	    Attack: fedms.NoiseAttack{},
//	    Dataset: fedms.DatasetSpec{Kind: fedms.DatasetBlobs, Samples: 10000, Alpha: 10},
//	    Model:   fedms.ModelSpec{Kind: fedms.ModelMLP, Hidden: []int{64}},
//	    Seed:    1,
//	})
//
// Advanced callers can use BuildEngine to drive rounds manually, or the
// node package's distributed runtime via the fedms-node command.
package fedms

import (
	"fmt"
	"time"

	"fedms/internal/aggregate"
	"fedms/internal/attack"
	"fedms/internal/compress"
	"fedms/internal/core"
	"fedms/internal/data"
	"fedms/internal/metrics"
	"fedms/internal/nn"
	"fedms/internal/obs"
	"fedms/internal/randx"
)

// Re-exported types: these aliases make the full vocabulary of the
// library available to API users without reaching into internal
// packages.
type (
	// Attack is a Byzantine parameter-server behaviour.
	Attack = attack.Attack
	// NoAttack leaves every PS honest.
	NoAttack = attack.None
	// NoiseAttack adds Gaussian noise to the honest aggregate.
	NoiseAttack = attack.Noise
	// RandomAttack replaces the aggregate with U[-10,10] values.
	RandomAttack = attack.Random
	// SafeguardAttack subtracts a scaled pseudo global gradient.
	SafeguardAttack = attack.Safeguard
	// BackwardAttack replays the aggregate from T rounds ago.
	BackwardAttack = attack.Backward
	// SignFlipAttack disseminates the negated aggregate.
	SignFlipAttack = attack.SignFlip
	// ZeroAttack disseminates an all-zeros model.
	ZeroAttack = attack.Zero
	// ALIEAttack is the "a little is enough" colluding attack.
	ALIEAttack = attack.ALIE
	// IPMAttack is the inner-product-manipulation colluding attack.
	IPMAttack = attack.IPM
	// CodecPoisonAttack is the codec-aware sparse-index poisoning
	// attack (ALIE-style shift on the top-k coordinate support).
	CodecPoisonAttack = attack.CodecPoison

	// UploadAttack is a Byzantine *client* behaviour (the two-sided
	// threat model the paper lists as future work).
	UploadAttack = attack.UploadAttack
	// UploadSignFlip uploads the negated local model.
	UploadSignFlip = attack.UploadSignFlip
	// UploadNoise adds Gaussian noise to the upload.
	UploadNoise = attack.UploadNoise
	// UploadRandom replaces the upload with uniform random values.
	UploadRandom = attack.UploadRandom
	// UploadScaled amplifies the local update (model replacement).
	UploadScaled = attack.UploadScaled

	// Rule is a model filter / aggregation rule.
	Rule = aggregate.Rule
	// TrimmedMean is the Fed-MS client-side model filter.
	TrimmedMean = aggregate.TrimmedMean
	// MeanRule is vanilla averaging (no Byzantine tolerance).
	MeanRule = aggregate.Mean
	// MedianRule is the coordinate-wise median baseline.
	MedianRule = aggregate.CoordinateMedian
	// KrumRule is the Krum selection baseline.
	KrumRule = aggregate.Krum
	// GeoMedianRule is the Weiszfeld geometric-median baseline.
	GeoMedianRule = aggregate.GeoMedian
	// MultiKrumRule averages the best-scored Krum selections.
	MultiKrumRule = aggregate.MultiKrum
	// BulyanRule is the two-stage Krum + trimmed-median defence.
	BulyanRule = aggregate.Bulyan
	// ClippingRule is iterative centered clipping.
	ClippingRule = aggregate.CenteredClipping
	// FedGreedRule is the greedy lowest-holdout-loss prefix average
	// (needs a loss oracle; falls back to the coordinate median).
	FedGreedRule = aggregate.FedGreed
	// LossClusterRule is the two-cluster holdout-loss split (needs a
	// loss oracle; falls back to the coordinate median).
	LossClusterRule = aggregate.LossCluster
	// LossEval is a holdout-loss oracle: a deterministic pure function
	// scoring a candidate model vector (see NewHoldoutOracle).
	LossEval = aggregate.LossEval

	// Engine is the synchronized Fed-MS round engine.
	Engine = core.Engine
	// EngineConfig is the low-level engine configuration.
	EngineConfig = core.Config
	// RoundStats reports one round's metrics.
	RoundStats = core.RoundStats
	// Learner is the trainable state a client holds.
	Learner = core.Learner
	// UploadStrategy selects sparse (Fed-MS) or full uploading.
	UploadStrategy = core.UploadStrategy

	// Schedule yields per-step learning rates.
	Schedule = nn.Schedule
	// Series is a recorded metric curve.
	Series = metrics.Series
	// Table is a collection of metric curves.
	Table = metrics.Table

	// Registry is the runtime metrics registry (atomic counters,
	// gauges and histograms, Prometheus text export).
	Registry = obs.Registry
	// Trace is the bounded per-round structured event trace (JSONL
	// export).
	Trace = obs.Trace
	// TraceEvent is one trace record.
	TraceEvent = obs.Event
)

// Upload strategies.
const (
	// SparseUpload: each client uploads to one uniformly random PS.
	SparseUpload = core.SparseUpload
	// FullUpload: each client uploads to every PS.
	FullUpload = core.FullUpload
	// RoundRobinUpload: deterministic rotation with exactly balanced
	// server loads (ablation of the random choice).
	RoundRobinUpload = core.RoundRobinUpload
)

// DatasetKind selects the training dataset.
type DatasetKind string

// Supported datasets.
const (
	// DatasetBlobs is the 10-class Gaussian-mixture feature dataset
	// (fast; used for the long federated sweeps).
	DatasetBlobs DatasetKind = "blobs"
	// DatasetSynthImage is the procedurally generated 10-class image
	// dataset standing in for CIFAR-10.
	DatasetSynthImage DatasetKind = "synthimage"
	// DatasetCIFAR10 loads the real CIFAR-10 binary distribution from
	// DatasetSpec.Dir — the paper's actual dataset, for environments
	// that have it on disk.
	DatasetCIFAR10 DatasetKind = "cifar10"
	// DatasetMNIST loads an MNIST-layout IDX directory (MNIST or
	// Fashion-MNIST, plain or gzipped) from DatasetSpec.Dir.
	DatasetMNIST DatasetKind = "mnist"
)

// DatasetSpec configures the dataset and its partition across clients.
type DatasetSpec struct {
	Kind DatasetKind
	// Samples is the total dataset size before the train/test split
	// (default 10000).
	Samples int
	// NumClasses defaults to 10 (the CIFAR-10 class count).
	NumClasses int
	// Features applies to blobs (default 32).
	Features int
	// Resolution and Channels apply to synthimage (defaults 16, 3).
	Resolution int
	Channels   int
	// Noise is the within-class noise level (dataset-specific default).
	// Larger values lower the reachable ceiling accuracy, which is how
	// the harness matches the paper's ~75% CIFAR-10 plateau.
	Noise float64
	// Spread is the class-center spread for blobs (default 1.0).
	Spread float64
	// Alpha is the Dirichlet heterogeneity parameter D_alpha; 0 or
	// negative selects an IID split.
	Alpha float64
	// TrainFrac is the train split fraction (default 0.8).
	TrainFrac float64
	// Dir is the cifar-10-batches-bin directory (cifar10 only).
	Dir string
}

// ModelKind selects the training model.
type ModelKind string

// Supported models.
const (
	// ModelLogistic is multinomial logistic regression (strongly
	// convex; matches the convergence theory's assumptions).
	ModelLogistic ModelKind = "logistic"
	// ModelMLP is a ReLU multilayer perceptron.
	ModelMLP ModelKind = "mlp"
	// ModelSmallCNN is a compact conv-BN-ReLU classifier.
	ModelSmallCNN ModelKind = "smallcnn"
	// ModelMobileNetV2 is the paper's training model (width-scalable).
	ModelMobileNetV2 ModelKind = "mobilenetv2"
)

// ModelSpec configures the model.
type ModelSpec struct {
	Kind ModelKind
	// Hidden lists MLP hidden-layer widths (default [64]).
	Hidden []int
	// WidthMult scales MobileNetV2 channel widths (default 0.25 — the
	// single-CPU-friendly setting; 1.0 is the paper-size network).
	WidthMult float64
}

// Config is the high-level experiment configuration. Zero fields take
// the paper's defaults where one exists.
type Config struct {
	// Clients (K), Servers (P), NumByzantine (B): the paper's headline
	// setting is 50 / 10 / 2.
	Clients      int
	Servers      int
	NumByzantine int
	// ByzantineIDs optionally pins the Byzantine servers.
	ByzantineIDs []int
	// Rounds (T) and LocalSteps (E); the paper uses 60 and 3.
	Rounds     int
	LocalSteps int
	// BatchSize for local SGD (default 32).
	BatchSize int
	// TrimBeta is the filter's trim rate β. Negative selects the
	// vanilla mean filter (the paper's "Vanilla FL" baseline). Zero
	// defaults to B/P (the Fed-MS rule).
	TrimBeta float64
	// FilterRule selects the client-side filter by registry spec —
	// "trim:0.2", "krum:2", "fedgreed", ... (see aggregate.ParseRule
	// for the grammar). It overrides TrimBeta; the Filter field
	// overrides both. Selecting a loss-based rule (fedgreed,
	// losscluster) makes BuildEngine construct a holdout-loss oracle
	// automatically (see HoldoutSamples).
	FilterRule string
	// Filter, when non-nil, overrides TrimBeta and FilterRule with an
	// arbitrary rule (median, Krum, ...).
	Filter Rule
	// Upload defaults to SparseUpload.
	Upload UploadStrategy
	// Participation is the fraction of clients active per round in
	// (0, 1]; zero means full participation.
	Participation float64
	// Shards, when > 1, routes server-side aggregation through the
	// two-tier sharded tree (see core.Config.Shards): uploads stream
	// into S column-range shards, so no server materialises the full
	// K×d matrix. Bit-identical to the unsharded rules for every
	// value; rules without a sharded kernel fall back. 0 or 1 disables
	// sharding.
	Shards int
	// Async switches the round lifecycle from the synchronous barrier
	// to bounded-staleness windowed aggregation (see core.Config.Async):
	// each round a PS aggregates what arrived inside Window, admits
	// uploads up to Staleness rounds late at weight 1/(1+s), and spills
	// further-future arrivals to a bounded buffer. A window of at least
	// one virtual latency scale makes async bit-identical to sync.
	Async bool
	// Window is the per-round aggregation window on the engine's seeded
	// virtual clock (default sched.DefaultLatencyScale/4).
	Window time.Duration
	// Staleness is the admission bound S (0 = only fresh uploads).
	Staleness int
	// SpillDir and SpillMem shape the deferred-upload spill buffer (see
	// core.Config.SpillDir): records beyond SpillMem bytes go to a
	// CRC-framed segment file; negative SpillMem forces all to disk.
	SpillDir string
	SpillMem int
	// Attack is the Byzantine behaviour (default NoAttack).
	Attack Attack
	// NumByzantineClients and ClientAttack enable the two-sided threat
	// model: that many clients upload tampered models. ServerFilter
	// sets the benign parameter servers' aggregation rule (default
	// plain mean, the paper's behaviour; use a robust rule to defend
	// against Byzantine clients).
	NumByzantineClients int
	ByzantineClientIDs  []int
	ClientAttack        UploadAttack
	ServerFilter        Rule
	// ServerRule selects the servers' aggregation rule by registry
	// spec, like FilterRule does for the client filter; the
	// ServerFilter field overrides it.
	ServerRule string
	// HoldoutSamples sizes the server-held holdout split backing the
	// loss oracle: the first HoldoutSamples examples of the test
	// split, deterministically per Seed (default 256, clamped to the
	// test set). Only consulted when a loss-based rule is selected.
	HoldoutSamples int
	// LossOracle overrides the automatically built holdout oracle
	// (see core.Config.LossOracle for the contract).
	LossOracle LossEval
	// LearningRate is a constant LR (default 0.1); Schedule overrides.
	LearningRate float64
	Schedule     Schedule
	// Momentum and WeightDecay configure the clients' local SGD.
	Momentum    float64
	WeightDecay float64
	// ClipNorm, when positive, clips the global gradient norm of each
	// local SGD step.
	ClipNorm float64
	// Augment enables pad-and-crop + horizontal-flip augmentation for
	// image datasets (ignored for feature datasets).
	Augment bool

	Dataset DatasetSpec
	Model   ModelSpec

	// Seed is the root seed for the whole experiment.
	Seed uint64
	// EvalEvery and EvalClients control evaluation (see core.Config).
	EvalEvery   int
	EvalClients int
	// Workers bounds parallel client training.
	Workers int

	// UploadCodec is the codec spec applied to client uploads, e.g.
	// "topk:0.05", "q8" or "ef+topk:0.1" (see compress.ParseSpec for the
	// grammar). Empty or "dense" disables compression and keeps seeded
	// trajectories bit-identical to the uncompressed engine.
	UploadCodec string
	// DownlinkCodec compresses the disseminated global models the same
	// way. Error feedback is rejected here: a broadcast has no
	// per-stream residual.
	DownlinkCodec string

	// Ingest bounds the distributed runtime's pre-admission ingest path
	// (hello deadline, per-source accept rate limiting, connect
	// tokens). The in-process engine opens no sockets, so these knobs
	// never affect a Run — they are validated here (fail-fast, before
	// any experiment work) and threaded into each parameter server's
	// node.PSConfig by fedms-node.
	Ingest IngestConfig

	// Obs, when non-nil, collects the engine's runtime metrics
	// (fedms_engine_*). Observation never perturbs training: seeded
	// runs are bit-identical with or without it.
	Obs *Registry
	// TraceSink, when non-nil, records one TraceEvent per round with
	// stage timings and round statistics; write it out with
	// Trace.WriteJSONL.
	TraceSink *Trace
}

// IngestConfig is the distributed ingest policy shared by every
// parameter server of a run: how long a new connection may take to
// introduce itself, how fast any single source may dial, and whether
// hellos must carry a connect token derived from the shared auth key.
// The zero value keeps the node package's defaults.
type IngestConfig struct {
	// HelloDeadline bounds each frame of a new connection's hello
	// handshake (default node.DefaultHelloDeadline).
	HelloDeadline time.Duration
	// AcceptRate, when positive, sheds connections from any source
	// dialing faster than this many connections per second.
	AcceptRate float64
	// AcceptBurst is the per-source token-bucket size (requires
	// AcceptRate; default node.DefaultAcceptBurst).
	AcceptBurst int
	// RequireToken admits only hellos presenting a valid connect token
	// (requires a shared auth key on the node command line).
	RequireToken bool
}

// validate fails fast on ingest knobs that NewPS would reject, before
// any dataset or socket work happens.
func (c IngestConfig) validate() error {
	if c.HelloDeadline < 0 {
		return fmt.Errorf("fedms: Ingest.HelloDeadline must be non-negative, got %v", c.HelloDeadline)
	}
	if c.AcceptRate < 0 {
		return fmt.Errorf("fedms: Ingest.AcceptRate must be non-negative, got %v", c.AcceptRate)
	}
	if c.AcceptBurst < 0 {
		return fmt.Errorf("fedms: Ingest.AcceptBurst must be non-negative, got %d", c.AcceptBurst)
	}
	if c.AcceptBurst > 0 && c.AcceptRate == 0 {
		return fmt.Errorf("fedms: Ingest.AcceptBurst requires Ingest.AcceptRate")
	}
	return nil
}

// Result collects a finished run.
type Result struct {
	// Stats holds every round's metrics.
	Stats []RoundStats
	// Accuracy and TrainLoss are the recorded curves (accuracy only on
	// evaluated rounds).
	Accuracy  *Series
	TrainLoss *Series
	// Engine is the finished engine (client models are inspectable).
	Engine *Engine
}

// FinalAccuracy returns the last evaluated test accuracy.
func (r *Result) FinalAccuracy() float64 {
	if r.Accuracy.Len() == 0 {
		panic("fedms: run recorded no evaluations")
	}
	return r.Accuracy.Final()
}

// Run builds the experiment from cfg and executes all rounds.
func Run(cfg Config) (*Result, error) {
	eng, err := BuildEngine(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Engine:    eng,
		Accuracy:  &Series{Name: "accuracy"},
		TrainLoss: &Series{Name: "train_loss"},
	}
	for t := 0; t < eng.Config().Rounds; t++ {
		st := eng.RunRound()
		res.Stats = append(res.Stats, st)
		res.TrainLoss.Append(st.Round, st.TrainLoss)
		if st.Evaluated {
			res.Accuracy.Append(st.Round, st.TestAcc)
		}
	}
	return res, nil
}

// BuildEngine constructs the engine (datasets, partitions, learners)
// without running it.
func BuildEngine(cfg Config) (*Engine, error) {
	cfg = withDefaults(cfg)

	if err := cfg.Ingest.validate(); err != nil {
		return nil, err
	}
	train, test, err := buildDataset(cfg.Dataset, cfg.Seed)
	if err != nil {
		return nil, err
	}
	parts, err := buildPartition(train, cfg.Dataset, cfg.Clients, cfg.Seed)
	if err != nil {
		return nil, err
	}

	learners := make([]Learner, cfg.Clients)
	for k := 0; k < cfg.Clients; k++ {
		net, err := buildModel(cfg.Model, cfg.Dataset, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var aug *data.Augmenter
		if cfg.Augment && cfg.Dataset.Kind != DatasetBlobs {
			// Standard CIFAR-style augmentation, padding scaled to the
			// input resolution.
			pad := 4
			if cfg.Dataset.Kind == DatasetSynthImage && cfg.Dataset.Resolution < 32 {
				pad = cfg.Dataset.Resolution / 8
			}
			if pad < 1 {
				pad = 1
			}
			aug = data.NewAugmenter(pad, 0.5, randx.Derive(cfg.Seed, fmt.Sprintf("augment/%d", k)))
		}
		learners[k] = core.NewNNLearner(core.NNLearnerConfig{
			Net:         net,
			Train:       train.Subset(parts[k]),
			Test:        test,
			BatchSize:   cfg.BatchSize,
			Momentum:    cfg.Momentum,
			WeightDecay: cfg.WeightDecay,
			Augment:     aug,
			ClipNorm:    cfg.ClipNorm,
			Seed:        randx.Derive(cfg.Seed, fmt.Sprintf("client/%d", k)),
		})
	}

	filter := cfg.Filter
	if filter == nil && cfg.FilterRule != "" {
		filter, err = aggregate.ParseRule(cfg.FilterRule)
		if err != nil {
			return nil, fmt.Errorf("fedms: FilterRule: %w", err)
		}
	}
	if filter == nil {
		if cfg.TrimBeta < 0 {
			filter = MeanRule{}
		} else {
			beta := cfg.TrimBeta
			if beta == 0 && cfg.Servers > 0 {
				beta = float64(cfg.NumByzantine) / float64(cfg.Servers)
			}
			filter = TrimmedMean{Beta: beta}
		}
	}
	serverFilter := cfg.ServerFilter
	if serverFilter == nil && cfg.ServerRule != "" {
		serverFilter, err = aggregate.ParseRule(cfg.ServerRule)
		if err != nil {
			return nil, fmt.Errorf("fedms: ServerRule: %w", err)
		}
	}
	// A loss-based rule without an oracle would silently run its
	// geometry fallback; build the holdout oracle whenever one is
	// needed and not explicitly supplied. The holdout split and model
	// instance derive from Seed alone, so the engine and the
	// distributed nodes (NewHoldoutOracle from the same Config) score
	// identically — bit-parity holds through the oracle path.
	oracle := cfg.LossOracle
	if oracle == nil && (isLossRule(filter) || isLossRule(serverFilter)) {
		oracle, err = newHoldoutOracle(test, cfg)
		if err != nil {
			return nil, err
		}
	}
	sched := cfg.Schedule
	if sched == nil {
		sched = nn.ConstantLR(cfg.LearningRate)
	}

	uploadSpec, err := compress.ParseSpec(cfg.UploadCodec)
	if err != nil {
		return nil, fmt.Errorf("fedms: UploadCodec: %w", err)
	}
	downlinkSpec, err := compress.ParseSpec(cfg.DownlinkCodec)
	if err != nil {
		return nil, fmt.Errorf("fedms: DownlinkCodec: %w", err)
	}

	return core.NewEngine(core.Config{
		Clients:             cfg.Clients,
		Servers:             cfg.Servers,
		NumByzantine:        cfg.NumByzantine,
		ByzantineIDs:        cfg.ByzantineIDs,
		NumByzantineClients: cfg.NumByzantineClients,
		ByzantineClientIDs:  cfg.ByzantineClientIDs,
		ClientAttack:        cfg.ClientAttack,
		ServerFilter:        serverFilter,
		LossOracle:          oracle,
		Rounds:              cfg.Rounds,
		LocalSteps:          cfg.LocalSteps,
		Upload:              cfg.Upload,
		Participation:       cfg.Participation,
		Shards:              cfg.Shards,
		Async:               cfg.Async,
		Window:              cfg.Window,
		Staleness:           cfg.Staleness,
		SpillDir:            cfg.SpillDir,
		SpillMem:            cfg.SpillMem,
		Attack:              cfg.Attack,
		Filter:              filter,
		Schedule:            sched,
		Seed:                cfg.Seed,
		EvalEvery:           cfg.EvalEvery,
		EvalClients:         cfg.EvalClients,
		Workers:             cfg.Workers,
		UploadCodec:         uploadSpec,
		DownlinkCodec:       downlinkSpec,
		Obs:                 cfg.Obs,
		TraceSink:           cfg.TraceSink,
	}, learners)
}

func withDefaults(cfg Config) Config {
	if cfg.Clients == 0 {
		cfg.Clients = 50
	}
	if cfg.Servers == 0 {
		cfg.Servers = 10
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 60
	}
	if cfg.LocalSteps == 0 {
		cfg.LocalSteps = 3
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.Attack == nil {
		cfg.Attack = NoAttack{}
	}
	if cfg.Dataset.Kind == "" {
		cfg.Dataset.Kind = DatasetBlobs
	}
	if cfg.Dataset.Samples == 0 {
		cfg.Dataset.Samples = 10000
	}
	if cfg.Dataset.NumClasses == 0 {
		cfg.Dataset.NumClasses = 10
	}
	if cfg.Dataset.Features == 0 {
		cfg.Dataset.Features = 32
	}
	if cfg.Dataset.Resolution == 0 {
		cfg.Dataset.Resolution = 16
	}
	if cfg.Dataset.Channels == 0 {
		cfg.Dataset.Channels = 3
	}
	if cfg.Dataset.TrainFrac == 0 {
		cfg.Dataset.TrainFrac = 0.8
	}
	if cfg.Model.Kind == "" {
		cfg.Model.Kind = ModelMLP
	}
	if len(cfg.Model.Hidden) == 0 {
		cfg.Model.Hidden = []int{64}
	}
	if cfg.Model.WidthMult == 0 {
		cfg.Model.WidthMult = 0.25
	}
	return cfg
}

func buildDataset(spec DatasetSpec, seed uint64) (train, test *data.Dataset, err error) {
	var ds *data.Dataset
	switch spec.Kind {
	case DatasetCIFAR10:
		// The binary distribution ships with its own train/test split.
		return data.LoadCIFAR10(spec.Dir)
	case DatasetMNIST:
		return data.LoadMNIST(spec.Dir)
	case DatasetBlobs:
		ds = data.Blobs(data.BlobsConfig{
			Samples:    spec.Samples,
			NumClasses: spec.NumClasses,
			Features:   spec.Features,
			Noise:      spec.Noise,
			Spread:     spec.Spread,
			Seed:       randx.Derive(seed, "dataset"),
		})
	case DatasetSynthImage:
		ds = data.SynthImage(data.SynthImageConfig{
			Samples:    spec.Samples,
			NumClasses: spec.NumClasses,
			Channels:   spec.Channels,
			Resolution: spec.Resolution,
			Noise:      spec.Noise,
			Seed:       randx.Derive(seed, "dataset"),
		})
	default:
		return nil, nil, fmt.Errorf("fedms: unknown dataset kind %q", spec.Kind)
	}
	train, test = ds.Split(spec.TrainFrac)
	return train, test, nil
}

func buildPartition(train *data.Dataset, spec DatasetSpec, clients int, seed uint64) (data.Partition, error) {
	pseed := randx.Derive(seed, "partition")
	if spec.Alpha > 0 {
		return data.DirichletPartition(train.Y, train.NumClasses, clients, spec.Alpha, pseed), nil
	}
	return data.IIDPartition(train.Len(), clients, pseed), nil
}

func buildModel(spec ModelSpec, ds DatasetSpec, seed uint64) (*nn.Network, error) {
	mseed := randx.Derive(seed, "model")
	switch spec.Kind {
	case ModelLogistic, ModelMLP:
		in := ds.Features
		switch ds.Kind {
		case DatasetSynthImage:
			in = ds.Channels * ds.Resolution * ds.Resolution
		case DatasetCIFAR10:
			in = 3 * 32 * 32
		case DatasetMNIST:
			in = 28 * 28
		}
		if spec.Kind == ModelLogistic {
			return nn.NewLogistic(in, ds.NumClasses, mseed), nil
		}
		return nn.NewMLP(nn.MLPConfig{In: in, Hidden: spec.Hidden, NumClasses: ds.NumClasses, Seed: mseed}), nil
	case ModelSmallCNN, ModelMobileNetV2:
		channels, resolution := ds.Channels, ds.Resolution
		classes := ds.NumClasses
		switch ds.Kind {
		case DatasetSynthImage:
		case DatasetCIFAR10:
			channels, resolution, classes = 3, 32, 10
		case DatasetMNIST:
			channels, resolution, classes = 1, 28, 10
		default:
			return nil, fmt.Errorf("fedms: %s requires an image dataset (synthimage, cifar10 or mnist)", spec.Kind)
		}
		if spec.Kind == ModelSmallCNN {
			return nn.NewSmallCNN(nn.SmallCNNConfig{
				NumClasses: classes,
				InChannels: channels,
				Resolution: resolution,
				Seed:       mseed,
			}), nil
		}
		return nn.NewMobileNetV2(nn.MobileNetV2Config{
			NumClasses: classes,
			InChannels: channels,
			Resolution: resolution,
			WidthMult:  spec.WidthMult,
			Seed:       mseed,
		}), nil
	default:
		return nil, fmt.Errorf("fedms: unknown model kind %q", spec.Kind)
	}
}
